"""Tests for the ``repro serve-batch`` CLI subcommand."""

import json
from pathlib import Path

import pytest

from repro.cli import main

WORKLOAD = Path(__file__).resolve().parents[1] / "examples" / "workload.json"


class TestServeBatch:
    def test_example_workload_prints_throughput_report(self, capsys):
        assert main(["serve-batch", str(WORKLOAD)]) == 0
        output = capsys.readouterr().out
        assert "Serving workload report" in output
        assert "requests/s" in output
        assert "latency mean/p50/p95" in output
        assert "deduplicated" in output
        assert "result cache" in output

    def test_overrides(self, capsys):
        assert main(["serve-batch", str(WORKLOAD), "--workers", "2",
                     "--budget-mib", "32", "--cache-entries", "64"]) == 0
        assert "requests/s" in capsys.readouterr().out

    def test_scheduling_overrides(self, capsys):
        assert main(["serve-batch", str(WORKLOAD), "--policy", "largest",
                     "--queue-limit", "512", "--tenant-quota", "128"]) == 0
        output = capsys.readouterr().out
        assert "policy=largest" in output
        assert "rejected at admission" in output

    def test_wfq_overrides(self, capsys):
        assert main(["serve-batch", str(WORKLOAD), "--policy", "wfq",
                     "--tenant-weights", "interactive=4,bulk=1",
                     "--cost-alpha", "0.5", "--reject-infeasible"]) == 0
        output = capsys.readouterr().out
        assert "policy=wfq" in output
        assert "cost model:" in output
        assert "infeasible" in output

    def test_unknown_policy_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-batch", str(WORKLOAD), "--policy", "lifo"])

    def test_bad_tenant_weights_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-batch", str(WORKLOAD), "--tenant-weights", "oops"])
        with pytest.raises(SystemExit):
            main(["serve-batch", str(WORKLOAD), "--tenant-weights", "a=heavy"])

    def test_missing_file(self, capsys):
        assert main(["serve-batch", "no-such-workload.json"]) == 2
        assert "serve-batch failed" in capsys.readouterr().err

    def test_invalid_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["serve-batch", str(bad)]) == 2
        assert "serve-batch failed" in capsys.readouterr().err

    def test_structurally_invalid_workload(self, tmp_path, capsys):
        bad = tmp_path / "empty.json"
        bad.write_text(json.dumps({"graphs": [], "requests": []}))
        assert main(["serve-batch", str(bad)]) == 2
        assert "serve-batch failed" in capsys.readouterr().err

    def test_unknown_dataset_in_workload(self, tmp_path, capsys):
        spec = {
            "graphs": [{"name": "x", "dataset": "NOPE"}],
            "requests": [{"app": "bfs", "graph": "x", "source": 0}],
        }
        path = tmp_path / "bad-dataset.json"
        path.write_text(json.dumps(spec))
        assert main(["serve-batch", str(path)]) == 2
        assert "serve-batch failed" in capsys.readouterr().err

    def test_transient_faults_ride_retries_to_exit_zero(self, capsys):
        assert main([
            "serve-batch", str(WORKLOAD),
            "--faults", "seed=9;registry.load:transient:n=1:limit=1",
        ]) == 0
        output = capsys.readouterr().out
        assert "resilience:" in output
        assert "faults injected" in output

    def test_permanent_faults_fail_the_batch(self, capsys):
        assert main([
            "serve-batch", str(WORKLOAD),
            "--faults", "worker.task:permanent:tenant=interactive",
        ]) == 1
        captured = capsys.readouterr()
        assert "request(s) failed" in captured.err
        assert "Serving workload report" in captured.out  # report still prints

    def test_malformed_fault_spec_is_a_usage_error(self, capsys):
        assert main([
            "serve-batch", str(WORKLOAD), "--faults", "not-a-site:transient",
        ]) == 2
        assert "serve-batch failed" in capsys.readouterr().err

    def test_health_summary(self, capsys):
        assert main([
            "health", str(WORKLOAD),
            "--faults", "seed=7;registry.load:transient:n=2:limit=1",
        ]) == 0
        output = capsys.readouterr().out
        assert "Service health summary" in output
        assert "native breaker" in output
        assert "health: ok" in output

    def test_health_degraded_exit_code(self, capsys):
        assert main([
            "health", str(WORKLOAD),
            "--faults", "worker.task:permanent:tenant=interactive",
        ]) == 1
        assert "health: degraded" in capsys.readouterr().out

    def test_listed_alongside_figures(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "serve-batch" in output
        assert "health" in output
