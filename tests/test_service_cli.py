"""Tests for the ``repro serve-batch`` CLI subcommand."""

import json
from pathlib import Path

import pytest

from repro.cli import main

WORKLOAD = Path(__file__).resolve().parents[1] / "examples" / "workload.json"


class TestServeBatch:
    def test_example_workload_prints_throughput_report(self, capsys):
        assert main(["serve-batch", str(WORKLOAD)]) == 0
        output = capsys.readouterr().out
        assert "Serving workload report" in output
        assert "requests/s" in output
        assert "latency mean/p50/p95" in output
        assert "deduplicated" in output
        assert "result cache" in output

    def test_overrides(self, capsys):
        assert main(["serve-batch", str(WORKLOAD), "--workers", "2",
                     "--budget-mib", "32", "--cache-entries", "64"]) == 0
        assert "requests/s" in capsys.readouterr().out

    def test_scheduling_overrides(self, capsys):
        assert main(["serve-batch", str(WORKLOAD), "--policy", "largest",
                     "--queue-limit", "512", "--tenant-quota", "128"]) == 0
        output = capsys.readouterr().out
        assert "policy=largest" in output
        assert "rejected at admission" in output

    def test_wfq_overrides(self, capsys):
        assert main(["serve-batch", str(WORKLOAD), "--policy", "wfq",
                     "--tenant-weights", "interactive=4,bulk=1",
                     "--cost-alpha", "0.5", "--reject-infeasible"]) == 0
        output = capsys.readouterr().out
        assert "policy=wfq" in output
        assert "cost model:" in output
        assert "infeasible" in output

    def test_unknown_policy_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-batch", str(WORKLOAD), "--policy", "lifo"])

    def test_bad_tenant_weights_rejected_by_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve-batch", str(WORKLOAD), "--tenant-weights", "oops"])
        with pytest.raises(SystemExit):
            main(["serve-batch", str(WORKLOAD), "--tenant-weights", "a=heavy"])

    def test_missing_file(self, capsys):
        assert main(["serve-batch", "no-such-workload.json"]) == 2
        assert "serve-batch failed" in capsys.readouterr().err

    def test_invalid_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["serve-batch", str(bad)]) == 2
        assert "serve-batch failed" in capsys.readouterr().err

    def test_structurally_invalid_workload(self, tmp_path, capsys):
        bad = tmp_path / "empty.json"
        bad.write_text(json.dumps({"graphs": [], "requests": []}))
        assert main(["serve-batch", str(bad)]) == 2
        assert "serve-batch failed" in capsys.readouterr().err

    def test_unknown_dataset_in_workload(self, tmp_path, capsys):
        spec = {
            "graphs": [{"name": "x", "dataset": "NOPE"}],
            "requests": [{"app": "bfs", "graph": "x", "source": 0}],
        }
        path = tmp_path / "bad-dataset.json"
        path.write_text(json.dumps(spec))
        assert main(["serve-batch", str(path)]) == 2
        assert "serve-batch failed" in capsys.readouterr().err

    def test_listed_alongside_figures(self, capsys):
        assert main(["list"]) == 0
        assert "serve-batch" in capsys.readouterr().out
