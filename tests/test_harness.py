"""Tests for the experiment harness used by the figure reproductions."""

import pytest

from repro.bench.harness import ExperimentConfig, ExperimentHarness
from repro.config import DATASET_SCALE, ampere_pcie4
from repro.types import AccessStrategy, Application

#: Small configuration so harness tests run quickly.
SMALL = ExperimentConfig(symbols=("GK", "SK"), num_sources=1, scale=DATASET_SCALE * 20)


@pytest.fixture
def harness():
    return ExperimentHarness(config=SMALL)


class TestConfig:
    def test_defaults_cover_all_graphs(self):
        config = ExperimentConfig()
        assert len(config.symbols) == 6
        assert config.num_sources >= 1

    def test_small_shrinks_work(self):
        config = ExperimentConfig()
        small = config.small()
        assert small.scale > config.scale
        assert small.num_sources <= config.num_sources


class TestHarness:
    def test_graph_loading_and_caching(self, harness):
        first = harness.graph("GK")
        second = harness.graph("GK")
        assert first is second
        assert first.name == "GK"

    def test_graph_element_bytes_variant(self, harness):
        graph8 = harness.graph("GK")
        graph4 = harness.graph("GK", element_bytes=4)
        assert graph8.element_bytes == 8
        assert graph4.element_bytes == 4

    def test_sources_are_stable(self, harness):
        assert harness.sources("GK").tolist() == harness.sources("GK").tolist()
        assert len(harness.sources("GK")) == SMALL.num_sources

    def test_run_returns_aggregate_and_caches(self, harness):
        first = harness.run(Application.BFS, "GK", AccessStrategy.MERGED_ALIGNED)
        second = harness.run(Application.BFS, "GK", AccessStrategy.MERGED_ALIGNED)
        assert first is second
        assert first.num_runs == SMALL.num_sources

    def test_run_distinguishes_systems(self, harness):
        default_run = harness.run(Application.BFS, "GK", AccessStrategy.MERGED_ALIGNED)
        pcie4_run = harness.run(
            Application.BFS, "GK", AccessStrategy.MERGED_ALIGNED, system=ampere_pcie4()
        )
        assert default_run is not pcie4_run
        assert pcie4_run.mean_seconds < default_run.mean_seconds

    def test_speedup_over_uvm(self, harness):
        speedup = harness.speedup_over_uvm(
            Application.BFS, "GK", AccessStrategy.MERGED_ALIGNED
        )
        assert speedup > 0

    def test_clear(self, harness):
        harness.run(Application.BFS, "GK", AccessStrategy.UVM)
        harness.clear()
        assert not harness._runs
        assert not harness._graphs
