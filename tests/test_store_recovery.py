"""Crash-safety: SIGKILL a serving process mid-write, restart warm.

The WAL journal is the whole point of the pragma discipline: a process
killed with no warning — no drain, no checkpoint, no connection close —
must leave a database that passes ``PRAGMA integrity_check`` and still
answers the killed process's cached requests after restart.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import textwrap
import time

from repro.config import ServiceConfig
from repro.service import Service, TraversalRequest
from repro.service.store import store_verify
from repro.graph.generators import uniform_random_graph

#: One graph definition shared by the killed child and the restarted
#: service, so fingerprints match across processes.
GRAPH_ARGS = dict(num_vertices=300, num_edges=2400, seed=5)

CHILD_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.config import ServiceConfig
    from repro.service import Service, TraversalRequest
    from repro.graph.generators import uniform_random_graph

    store_path = sys.argv[1]
    graph = uniform_random_graph(300, 2400, seed=5, name="crash")
    config = ServiceConfig(
        max_workers=2, store_path=store_path, store_flush_interval=0.01
    )
    service = Service(config=config)
    service.registry.register("crash", lambda: graph)
    source = 0
    while True:  # run until SIGKILLed; results stream into the store
        job = service.submit(TraversalRequest("bfs", "crash", source=source))
        service.result(job, timeout=30)
        source = (source + 1) % 64
    """
)


def _poll_rows(path, minimum, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True, timeout=1.0)
            rows = conn.execute("SELECT COUNT(*) FROM result_cache").fetchone()[0]
            conn.close()
            if rows >= minimum:
                return rows
        except sqlite3.Error:
            pass
        time.sleep(0.05)
    return 0


def test_sigkill_mid_write_recovers_warm(tmp_path):
    db = tmp_path / "crash.db"
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(db)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        rows = _poll_rows(db, minimum=3)
        assert rows >= 3, "child never wrote results through to the store"
        # No drain, no checkpoint, no goodbye.
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)

    # The WAL database survives the kill intact...
    ok, detail = store_verify(db)
    assert ok, f"store corrupt after SIGKILL: {detail}"

    # ...and a restarted service answers the dead process's requests warm.
    graph = uniform_random_graph(300, 2400, seed=5, name="crash")
    config = ServiceConfig(
        max_workers=2, store_path=str(db), store_flush_interval=0.01
    )
    with Service(config=config) as service:
        service.registry.register("crash", lambda: graph)
        assert service._costmodel.stats().families >= 1, (
            "cost history must survive the crash and seed the model"
        )
        job = service.submit(TraversalRequest("bfs", "crash", source=0))
        result = service.result(job, timeout=30)
        assert result is not None
        stats = service.stats()
        assert stats.store_state in ("ok", "quarantined")
        assert stats.executions == 0, "request must be served from the store"
        assert stats.store_hits >= 1
