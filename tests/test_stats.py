"""Tests for serving-stats corner cases: latency windows and tenant tallies.

The latency percentiles a long-running service reports come from a bounded
sliding window (``ServiceConfig.latency_window``); these tests pin the
retention/wraparound behaviour — only the most recent N samples survive — and
the per-tenant completed/missed accounting under genuinely concurrent
submissions, where a lost update would silently under-count a tenant.
"""

import threading

import pytest

from repro.config import ServiceConfig
from repro.errors import SimulationError
from repro.service import (
    GraphRegistry,
    Service,
    TraversalRequest,
    default_engine,
)
from repro.service.stats import LatencyStats


@pytest.fixture
def registry(random_graph):
    registry = GraphRegistry()
    registry.register_graph(random_graph)
    return registry


def make_service(registry, engine=None, **config_overrides) -> Service:
    config = ServiceConfig(**{"max_workers": 2, **config_overrides})
    return Service(registry=registry, config=config, engine=engine)


class TestLatencyStatsFormula:
    def test_empty_samples(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.p99_seconds == 0.0

    def test_percentiles_round_up_never_down(self):
        # Ceil-based nearest rank: p50 of two samples is the *upper* one.
        stats = LatencyStats.from_samples([0.1, 0.9])
        assert stats.p50_seconds == 0.9
        stats = LatencyStats.from_samples([0.1, 0.2, 0.3, 0.4])
        assert stats.p50_seconds == 0.3
        assert stats.p95_seconds == 0.4

    def test_order_independent(self):
        forward = LatencyStats.from_samples([0.1, 0.2, 0.3])
        backward = LatencyStats.from_samples([0.3, 0.2, 0.1])
        assert forward == backward


class TestLatencyWindowRetention:
    def test_window_keeps_only_most_recent_samples(self, registry, random_graph):
        with make_service(registry, max_workers=1, latency_window=4) as service:
            for source in range(7):
                job = service.submit(
                    TraversalRequest("bfs", random_graph.name, source=source)
                )
                service.result(job, timeout=30)  # serialize: one sample per job
            stats = service.stats()
        assert stats.completed == 7
        # The window wrapped: only the newest 4 of 7 samples back the stats.
        assert stats.latency.count == 4
        assert stats.queue_wait.count == 4
        assert len(service._latency_samples) == 4

    def test_wraparound_drops_oldest_first(self, registry, random_graph):
        with make_service(registry, max_workers=1, latency_window=3) as service:
            jobs = []
            for source in range(5):
                job = service.submit(
                    TraversalRequest("bfs", random_graph.name, source=source)
                )
                service.result(job, timeout=30)
                jobs.append(job)
            retained = list(service._latency_samples)
        expected = [job.total_seconds for job in jobs[-3:]]
        assert retained == expected

    def test_window_not_yet_full(self, registry, random_graph):
        with make_service(registry, latency_window=1024) as service:
            for source in range(3):
                service.submit(
                    TraversalRequest("bfs", random_graph.name, source=source)
                )
            assert service.wait_all(timeout=30)
            stats = service.stats()
        assert stats.latency.count == 3
        assert stats.latency.max_seconds >= stats.latency.p50_seconds > 0


class FailingSourcesEngine:
    """Engine that fails a fixed set of sources, else runs the real engine."""

    def __init__(self, fail_sources):
        self.fail_sources = set(fail_sources)

    def __call__(self, request, graph):
        if request.source in self.fail_sources:
            raise SimulationError(f"injected failure for source {request.source}")
        return default_engine(request, graph)


class TestTenantStatsConcurrency:
    def test_completed_and_missed_tallies_survive_concurrent_submits(
        self, registry, random_graph
    ):
        """8 threads x 4 jobs across two tenants; the failing half carries
        deadlines, so every failure must land as exactly one tenant miss."""
        fail_sources = set(range(100, 116))  # one per failing submission
        engine = FailingSourcesEngine(fail_sources)
        with make_service(registry, engine=engine, max_workers=4) as service:
            errors = []

            def submit_for(thread_index: int) -> None:
                tenant = "even" if thread_index % 2 == 0 else "odd"
                try:
                    for k in range(2):
                        service.submit(
                            TraversalRequest(
                                "bfs",
                                random_graph.name,
                                source=thread_index * 2 + k,
                                tenant=tenant,
                            )
                        )
                        service.submit(
                            TraversalRequest(
                                "bfs",
                                random_graph.name,
                                source=100 + thread_index * 2 + k,
                                tenant=tenant,
                                deadline=30.0,
                            )
                        )
                except Exception as exc:  # pragma: no cover - fails the test
                    errors.append(exc)

            threads = [
                threading.Thread(target=submit_for, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert service.wait_all(timeout=60)
            stats = service.stats()

        assert stats.completed == 16
        assert stats.failed == 16
        for tenant in ("even", "odd"):
            outcome = stats.tenants[tenant]
            assert outcome.completed == 8
            assert outcome.missed == 8
        assert stats.deadlines_missed == 16
        assert stats.deadlines_met == 0

    def test_anonymous_traffic_tracked_separately(self, registry, random_graph):
        with make_service(registry) as service:
            service.submit(
                TraversalRequest("bfs", random_graph.name, source=0, tenant="a")
            )
            service.submit(TraversalRequest("bfs", random_graph.name, source=1))
            assert service.wait_all(timeout=30)
            stats = service.stats()
        assert stats.tenants["a"].completed == 1
        assert stats.tenants[None].completed == 1
