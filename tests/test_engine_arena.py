"""Tests for engine reuse: TraversalEngine.reset() and the EngineArena."""

import threading

import numpy as np
import pytest

from repro.config import ampere_pcie4
from repro.errors import ConfigurationError
from repro.traversal.arena import EngineArena
from repro.traversal.bfs import run_bfs
from repro.traversal.engine import TraversalEngine
from repro.traversal.sssp import run_sssp
from repro.types import AccessStrategy

ALL_STRATEGIES = tuple(AccessStrategy)


def _metrics_equal(a, b):
    assert a.seconds == b.seconds
    assert a.iterations == b.iterations
    assert a.traffic.edges_processed == b.traffic.edges_processed
    assert a.traffic.useful_bytes == b.traffic.useful_bytes
    assert a.traffic.uvm_migrated_bytes == b.traffic.uvm_migrated_bytes
    assert a.traffic.uvm_migrations == b.traffic.uvm_migrations
    assert a.traffic.dram_bytes == b.traffic.dram_bytes
    assert a.traffic.request_histogram.counts == b.traffic.request_histogram.counts


class TestEngineReset:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_second_run_matches_fresh_engine(self, random_graph, strategy):
        reused = TraversalEngine(random_graph, strategy)
        run_bfs(random_graph, 0, strategy=strategy, engine=reused)
        reused.reset()
        second = run_bfs(random_graph, 7, strategy=strategy, engine=reused)

        fresh = run_bfs(
            random_graph,
            7,
            strategy=strategy,
            engine=TraversalEngine(random_graph, strategy),
        )
        assert np.array_equal(second.values, fresh.values)
        _metrics_equal(second.metrics, fresh.metrics)

    def test_reset_clears_counters_and_residency(self, random_graph):
        engine = TraversalEngine(random_graph, AccessStrategy.UVM)
        run_bfs(random_graph, 3, strategy=AccessStrategy.UVM, engine=engine)
        assert engine.iterations > 0
        assert engine.edge_uvm.resident_pages > 0
        engine.reset()
        assert engine.iterations == 0
        assert engine.breakdown.total() == 0.0
        assert engine.traffic.edges_processed == 0
        assert engine.kernels.num_launches == 0
        assert engine.monitor.total_requests == 0
        assert engine.dram.bytes_touched == 0
        assert engine.edge_uvm.resident_pages == 0

    def test_reset_keeps_allocations(self, random_graph):
        engine = TraversalEngine(random_graph, AccessStrategy.MERGED_ALIGNED)
        edge_allocation = engine.edge_allocation
        engine.reset()
        assert engine.edge_allocation is edge_allocation

    def test_sssp_engine_reuse(self, random_graph):
        engine = TraversalEngine(random_graph, AccessStrategy.MERGED, needs_weights=True)
        run_sssp(random_graph, 0, strategy=AccessStrategy.MERGED, engine=engine)
        engine.reset()
        second = run_sssp(random_graph, 5, strategy=AccessStrategy.MERGED, engine=engine)
        fresh = run_sssp(random_graph, 5, strategy=AccessStrategy.MERGED)
        assert np.array_equal(second.values, fresh.values)
        _metrics_equal(second.metrics, fresh.metrics)


class TestEngineArena:
    def test_release_then_acquire_reuses_engine(self, random_graph):
        arena = EngineArena()
        first = arena.acquire(random_graph, AccessStrategy.MERGED_ALIGNED)
        arena.release(first)
        second = arena.acquire(random_graph, AccessStrategy.MERGED_ALIGNED)
        assert second is first
        assert arena.created == 1
        assert arena.reused == 1

    def test_distinct_configurations_get_distinct_engines(self, random_graph):
        arena = EngineArena()
        a = arena.acquire(random_graph, AccessStrategy.MERGED_ALIGNED)
        b = arena.acquire(random_graph, AccessStrategy.UVM)
        assert a is not b
        arena.release(a)
        c = arena.acquire(random_graph, AccessStrategy.UVM)
        assert c is not a

    def test_system_is_part_of_the_key(self, random_graph):
        arena = EngineArena()
        default = arena.acquire(random_graph, AccessStrategy.MERGED_ALIGNED)
        arena.release(default)
        other = arena.acquire(
            random_graph, AccessStrategy.MERGED_ALIGNED, system=ampere_pcie4()
        )
        assert other is not default

    def test_released_engines_come_back_reset(self, random_graph):
        arena = EngineArena()
        engine = arena.acquire(random_graph, AccessStrategy.MERGED_ALIGNED)
        run_bfs(random_graph, 0, engine=engine)
        arena.release(engine)
        again = arena.acquire(random_graph, AccessStrategy.MERGED_ALIGNED)
        assert again is engine
        assert again.iterations == 0
        assert again.traffic.edges_processed == 0

    def test_lease_context_manager(self, random_graph):
        arena = EngineArena()
        with arena.lease(random_graph, AccessStrategy.MERGED_ALIGNED) as engine:
            run_bfs(random_graph, 1, engine=engine)
        assert arena.idle_count == 1

    def test_max_idle_bound(self, random_graph, uniform_graph):
        arena = EngineArena(max_idle=1)
        a = arena.acquire(random_graph, AccessStrategy.MERGED_ALIGNED)
        b = arena.acquire(uniform_graph, AccessStrategy.MERGED_ALIGNED)
        arena.release(a)
        arena.release(b)
        assert arena.idle_count == 1

    def test_reloaded_graph_with_same_name_drops_stale_engines(self, random_graph):
        from dataclasses import replace

        arena = EngineArena()
        engine = arena.acquire(random_graph, AccessStrategy.MERGED_ALIGNED)
        arena.release(engine)
        # A registry eviction + reload produces a new object under the old
        # name; the parked engine must not be handed out against it.
        reloaded = replace(random_graph)
        fresh = arena.acquire(reloaded, AccessStrategy.MERGED_ALIGNED)
        assert fresh is not engine
        assert fresh.graph is reloaded
        assert arena.idle_count == 0  # stale engine dropped, not parked

    def test_foreign_engine_rejected(self, random_graph):
        arena = EngineArena()
        engine = TraversalEngine(random_graph, AccessStrategy.MERGED_ALIGNED)
        with pytest.raises(ConfigurationError):
            arena.release(engine)

    def test_concurrent_leases_are_exclusive(self, random_graph):
        arena = EngineArena()
        seen = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            engine = arena.acquire(random_graph, AccessStrategy.MERGED_ALIGNED)
            seen.append(engine)
            arena.release(engine)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(seen) == 4
        assert arena.created + arena.reused == 4
