"""Tests for device memory and the simulated address space."""

import pytest

from repro.errors import AllocationError
from repro.memsim.address_space import ALLOCATION_ALIGNMENT, AddressSpace
from repro.memsim.gpu_memory import DeviceMemory
from repro.types import MemorySpace


class TestDeviceMemory:
    def test_allocate_and_free(self):
        memory = DeviceMemory(capacity_bytes=1000)
        memory.allocate("a", 400)
        memory.allocate("b", 300)
        assert memory.allocated_bytes == 700
        assert memory.free_bytes == 300
        memory.free("a")
        assert memory.free_bytes == 700

    def test_over_allocation_rejected(self):
        memory = DeviceMemory(capacity_bytes=100)
        with pytest.raises(AllocationError):
            memory.allocate("big", 200)

    def test_duplicate_name_rejected(self):
        memory = DeviceMemory(capacity_bytes=100)
        memory.allocate("x", 10)
        with pytest.raises(AllocationError):
            memory.allocate("x", 10)

    def test_free_unknown_rejected(self):
        with pytest.raises(AllocationError):
            DeviceMemory(capacity_bytes=100).free("nope")

    def test_negative_size_rejected(self):
        with pytest.raises(AllocationError):
            DeviceMemory(capacity_bytes=100).allocate("x", -1)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(AllocationError):
            DeviceMemory(capacity_bytes=0)

    def test_page_cache_capacity(self):
        memory = DeviceMemory(capacity_bytes=100_000)
        memory.allocate("static", 60_000)
        assert memory.page_cache_capacity(4096) == (100_000 - 60_000) // 4096

    def test_page_cache_capacity_invalid_page(self):
        with pytest.raises(AllocationError):
            DeviceMemory(capacity_bytes=100).page_cache_capacity(0)

    def test_can_fit(self):
        memory = DeviceMemory(capacity_bytes=100)
        assert memory.can_fit(100)
        memory.allocate("x", 60)
        assert not memory.can_fit(50)

    def test_reset(self):
        memory = DeviceMemory(capacity_bytes=100)
        memory.allocate("x", 60)
        memory.reset()
        assert memory.free_bytes == 100


class TestAddressSpace:
    @pytest.fixture
    def space(self):
        return AddressSpace(DeviceMemory(capacity_bytes=10_000_000))

    def test_allocations_are_page_aligned(self, space):
        allocation = space.allocate("edges", 1234, MemorySpace.HOST_PINNED)
        assert allocation.base_address % ALLOCATION_ALIGNMENT == 0
        assert allocation.size_bytes == 1234

    def test_allocations_do_not_overlap(self, space):
        first = space.allocate("a", 10_000, MemorySpace.HOST_PINNED)
        second = space.allocate("b", 10_000, MemorySpace.HOST_PINNED)
        assert second.base_address >= first.end_address

    def test_misaligned_allocation(self, space):
        allocation = space.allocate(
            "edges", 1000, MemorySpace.HOST_PINNED, misalign_bytes=32
        )
        assert allocation.base_address % ALLOCATION_ALIGNMENT == 32

    def test_misalign_must_be_within_page(self, space):
        with pytest.raises(AllocationError):
            space.allocate("edges", 100, MemorySpace.HOST_PINNED, misalign_bytes=4096)

    def test_device_allocations_consume_device_memory(self, space):
        space.allocate("labels", 5_000_000, MemorySpace.DEVICE)
        assert space.device.allocated_bytes == 5_000_000
        space.free("labels")
        assert space.device.allocated_bytes == 0

    def test_host_allocations_do_not_consume_device_memory(self, space):
        space.allocate("edges", 5_000_000, MemorySpace.HOST_PINNED)
        assert space.device.allocated_bytes == 0

    def test_duplicate_name_rejected(self, space):
        space.allocate("x", 10, MemorySpace.UVM)
        with pytest.raises(AllocationError):
            space.allocate("x", 10, MemorySpace.UVM)

    def test_get_and_free_unknown(self, space):
        with pytest.raises(AllocationError):
            space.get("nope")
        with pytest.raises(AllocationError):
            space.free("nope")

    def test_total_bytes_per_space(self, space):
        space.allocate("a", 100, MemorySpace.UVM)
        space.allocate("b", 200, MemorySpace.UVM)
        space.allocate("c", 300, MemorySpace.DEVICE)
        assert space.total_bytes(MemorySpace.UVM) == 300
        assert space.total_bytes(MemorySpace.DEVICE) == 300
        assert space.total_bytes(MemorySpace.HOST_PINNED) == 0

    def test_element_address(self, space):
        allocation = space.allocate("edges", 80, MemorySpace.HOST_PINNED, element_bytes=8)
        assert allocation.num_elements == 10
        assert allocation.element_address(3) == allocation.base_address + 24
        with pytest.raises(AllocationError):
            allocation.element_address(10)

    def test_contains(self, space):
        allocation = space.allocate("edges", 64, MemorySpace.HOST_PINNED)
        assert allocation.contains(allocation.base_address)
        assert allocation.contains(allocation.end_address - 1)
        assert not allocation.contains(allocation.end_address)
