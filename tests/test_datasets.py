"""Tests for the scaled Table 2 dataset analogs."""

import numpy as np
import pytest

from repro.config import DATASET_SCALE
from repro.errors import DatasetError
from repro.graph.datasets import (
    DATASET_SYMBOLS,
    UNDIRECTED_SYMBOLS,
    clear_cache,
    dataset_specs,
    get_spec,
    load_dataset,
    pick_sources,
)

#: A much smaller scale used so dataset tests stay fast.
TEST_SCALE = DATASET_SCALE * 20


class TestSpecs:
    def test_all_six_datasets_present(self):
        assert DATASET_SYMBOLS == ("GK", "GU", "FS", "ML", "SK", "UK5")
        assert set(dataset_specs()) == set(DATASET_SYMBOLS)

    def test_directedness_matches_table2(self):
        specs = dataset_specs()
        assert not specs["GK"].directed
        assert not specs["GU"].directed
        assert not specs["FS"].directed
        assert not specs["ML"].directed
        assert specs["SK"].directed
        assert specs["UK5"].directed
        assert UNDIRECTED_SYMBOLS == ("GK", "GU", "FS", "ML")

    def test_paper_average_degrees(self):
        specs = dataset_specs()
        # §5.2: average degree ~38 for all graphs except ML (~222).
        assert specs["ML"].paper_average_degree == pytest.approx(221, rel=0.05)
        for symbol in ("GK", "GU", "SK", "UK5"):
            assert 25 < specs[symbol].paper_average_degree < 60

    def test_scaled_counts_preserve_average_degree(self):
        for spec in dataset_specs().values():
            vertices, edges = spec.scaled_counts(DATASET_SCALE)
            scaled_degree = edges / vertices
            assert scaled_degree == pytest.approx(spec.paper_average_degree, rel=0.05)

    def test_get_spec_unknown_symbol(self):
        with pytest.raises(DatasetError):
            get_spec("NOPE")

    def test_get_spec_case_insensitive(self):
        assert get_spec("gk").symbol == "GK"


class TestLoading:
    def test_load_matches_spec_size(self):
        graph = load_dataset("GK", scale=TEST_SCALE, use_cache=False)
        spec = get_spec("GK")
        vertices, edges = spec.scaled_counts(TEST_SCALE)
        assert graph.num_vertices == vertices
        # Undirected symmetrization makes the exact count approximate.
        assert graph.num_edges == pytest.approx(edges, rel=0.25)

    def test_undirected_datasets_are_symmetric(self):
        graph = load_dataset("FS", scale=DATASET_SCALE * 100, use_cache=False)
        assert not graph.directed

    def test_weights_attached_by_default(self):
        graph = load_dataset("SK", scale=TEST_SCALE, use_cache=False)
        assert graph.has_weights
        assert graph.weights.min() >= 8
        assert graph.weights.max() <= 72

    def test_weights_can_be_skipped(self):
        graph = load_dataset("SK", scale=TEST_SCALE, with_weights=False, use_cache=False)
        assert not graph.has_weights

    def test_element_bytes_4(self):
        graph = load_dataset("SK", scale=TEST_SCALE, element_bytes=4, use_cache=False)
        assert graph.element_bytes == 4

    def test_metadata_recorded(self):
        graph = load_dataset("UK5", scale=TEST_SCALE, use_cache=False)
        assert graph.meta["symbol"] == "UK5"
        assert graph.meta["full_name"] == "uk-2007-05"

    def test_cache_returns_same_object(self):
        clear_cache()
        first = load_dataset("SK", scale=TEST_SCALE)
        second = load_dataset("SK", scale=TEST_SCALE)
        assert first is second
        clear_cache()

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("BOGUS")

    def test_deterministic_across_calls(self):
        first = load_dataset("ML", scale=TEST_SCALE, use_cache=False)
        second = load_dataset("ML", scale=TEST_SCALE, use_cache=False)
        assert first.edges.tolist() == second.edges.tolist()


class TestPickSources:
    def test_sources_have_outgoing_edges(self):
        graph = load_dataset("GK", scale=TEST_SCALE, use_cache=False)
        sources = pick_sources(graph, 8, seed=1)
        degrees = graph.degrees()
        assert np.all(degrees[sources] > 0)

    def test_sources_are_unique_and_deterministic(self):
        graph = load_dataset("GK", scale=TEST_SCALE, use_cache=False)
        first = pick_sources(graph, 8, seed=1)
        second = pick_sources(graph, 8, seed=1)
        assert first.tolist() == second.tolist()
        assert len(set(first.tolist())) == len(first)

    def test_requesting_more_sources_than_candidates(self, star_graph):
        sources = pick_sources(star_graph, 100, seed=2)
        assert len(sources) <= star_graph.num_vertices

    def test_graph_without_edges_rejected(self):
        from repro.graph.csr import CSRGraph

        empty = CSRGraph(offsets=np.zeros(4, dtype=np.int64), edges=np.array([], dtype=np.int64))
        with pytest.raises(DatasetError):
            pick_sources(empty, 1)
