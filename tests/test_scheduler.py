"""Tests for scheduling policies, admission control and deadline handling."""

import threading
import time
from collections import OrderedDict

import pytest

from repro.config import (
    SCHEDULING_POLICIES,
    ServiceConfig,
    normalize_tenant_weights,
)
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    DeadlineExceededError,
    InfeasibleDeadlineError,
    JobFailedError,
)
from repro.service import (
    CostModel,
    EdfPolicy,
    FifoPolicy,
    GraphRegistry,
    Job,
    JobStatus,
    LargestBatchPolicy,
    LatencyStats,
    RequestQueue,
    Service,
    TraversalRequest,
    WeightedFairPolicy,
    default_engine,
    make_policy,
)
from repro.service.workload import config_from_spec, expand_requests
from repro.types import Application


def make_job(job_id: str, source: int, deadline: float | None = None, **kwargs) -> Job:
    request = TraversalRequest(
        Application.BFS, "g", source=source, deadline=deadline, **kwargs
    )
    return Job(job_id=job_id, request=request)


class GatedCountingEngine:
    """Counts engine invocations; optionally blocks until released."""

    def __init__(self, gated: bool = False):
        self.calls: list[tuple] = []
        self.gate = threading.Event()
        if not gated:
            self.gate.set()
        self._lock = threading.Lock()

    def __call__(self, request, graph):
        with self._lock:
            self.calls.append(request.cache_key)
        self.gate.wait(30)
        return default_engine(request, graph)


@pytest.fixture
def registry(random_graph, uniform_graph):
    registry = GraphRegistry()
    registry.register_graph(random_graph)
    registry.register_graph(uniform_graph)
    return registry


def make_service(registry, engine=None, **config_overrides) -> Service:
    config = ServiceConfig(**{"max_workers": 2, **config_overrides})
    return Service(registry=registry, config=config, engine=engine)


# --------------------------------------------------------------------- #
# Request-level normalization of the new fields
# --------------------------------------------------------------------- #
class TestRequestFields:
    def test_deadline_normalized_to_float(self):
        assert TraversalRequest("bfs", "g", source=0, deadline=2).deadline == 2.0
        assert TraversalRequest("bfs", "g", source=0).deadline is None

    @pytest.mark.parametrize("bad", [0, -1.5, float("inf"), float("nan"), "soon", True])
    def test_invalid_deadline_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            TraversalRequest("bfs", "g", source=0, deadline=bad)

    @pytest.mark.parametrize("bad", ["", 7, 1.0])
    def test_invalid_tenant_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            TraversalRequest("bfs", "g", source=0, tenant=bad)

    def test_deadline_and_tenant_excluded_from_keys(self):
        plain = TraversalRequest("bfs", "g", source=0)
        urgent = TraversalRequest("bfs", "g", source=0, deadline=0.5, tenant="acme")
        assert plain.cache_key == urgent.cache_key
        assert plain.batch_key == urgent.batch_key

    def test_describe_mentions_deadline_and_tenant(self):
        described = TraversalRequest(
            "bfs", "g", source=0, deadline=1.5, tenant="acme"
        ).describe()
        assert "deadline=1.5s" in described and "tenant=acme" in described

    def test_job_derives_absolute_deadline(self):
        job = make_job("j", 0, deadline=5.0)
        assert job.deadline_at == pytest.approx(job.submitted_at + 5.0)
        assert not job.expired()
        assert make_job("k", 0).deadline_at is None


# --------------------------------------------------------------------- #
# Policy unit behaviour
# --------------------------------------------------------------------- #
class TestPolicies:
    def groups(self, *entries):
        """Build an insertion-ordered group mapping from (key, jobs) pairs."""
        return OrderedDict(entries)

    def test_fifo_picks_oldest_group(self):
        groups = self.groups(
            (("a",), [make_job("a1", 1)]),
            (("b",), [make_job("b1", 2), make_job("b2", 3)]),
        )
        assert FifoPolicy().select(groups) == ("a",)

    def test_largest_picks_widest_group_ties_fifo(self):
        groups = self.groups(
            (("a",), [make_job("a1", 1)]),
            (("b",), [make_job("b1", 2), make_job("b2", 3)]),
            (("c",), [make_job("c1", 4), make_job("c2", 5)]),
        )
        assert LargestBatchPolicy().select(groups) == ("b",)

    def test_edf_picks_most_urgent_group(self):
        groups = self.groups(
            (("a",), [make_job("a1", 1)]),
            (("b",), [make_job("b1", 2, deadline=50.0)]),
            (("c",), [make_job("c1", 3, deadline=5.0), make_job("c2", 4)]),
        )
        assert EdfPolicy().select(groups) == ("c",)

    def test_edf_without_deadlines_degrades_to_fifo(self):
        groups = self.groups(
            (("a",), [make_job("a1", 1)]),
            (("b",), [make_job("b1", 2)]),
        )
        assert EdfPolicy().select(groups) == ("a",)

    def test_make_policy(self):
        assert isinstance(make_policy(None), FifoPolicy)
        assert isinstance(make_policy("largest"), LargestBatchPolicy)
        edf = EdfPolicy()
        assert make_policy(edf) is edf
        with pytest.raises(ConfigurationError):
            make_policy("shortest-job-first")
        for name in SCHEDULING_POLICIES:
            assert make_policy(name).name == name

    def test_make_policy_wires_wfq_weights_and_cost_model(self):
        model = CostModel()
        policy = make_policy("wfq", tenant_weights={"a": 2.0}, cost_model=model)
        assert isinstance(policy, WeightedFairPolicy)
        assert policy.weight_of("a") == 2.0
        assert policy.weight_of("unknown") == WeightedFairPolicy.DEFAULT_WEIGHT
        assert policy.weight_of(None) == WeightedFairPolicy.DEFAULT_WEIGHT

    def test_config_rejects_unknown_policy_and_bad_limits(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(policy="lifo")
        with pytest.raises(ConfigurationError):
            ServiceConfig(queue_limit=0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(tenant_quota=-1)
        with pytest.raises(ConfigurationError):
            ServiceConfig(latency_window=0)


# --------------------------------------------------------------------- #
# Weighted-fair queueing policy
# --------------------------------------------------------------------- #
class TestWeightedFairPolicy:
    def groups(self, *entries):
        return OrderedDict(entries)

    def drain(self, policy, groups, rounds=None):
        """Repeatedly select-and-pop, returning the selection order."""
        order = []
        while groups and (rounds is None or len(order) < rounds):
            key = policy.select(groups)
            groups.pop(key)
            order.append(key)
        return order

    def test_single_tenant_degrades_to_fifo(self):
        policy = WeightedFairPolicy()
        groups = self.groups(
            (("a",), [make_job("a1", 1)]),
            (("b",), [make_job("b1", 2)]),
            (("c",), [make_job("c1", 3)]),
        )
        assert self.drain(policy, groups) == [("a",), ("b",), ("c",)]

    def test_polite_group_preempts_backlogged_burst(self):
        policy = WeightedFairPolicy()
        groups = self.groups(
            *(
                ((f"agg{i}",), [make_job(f"a{i}", i, tenant="aggressive")])
                for i in range(5)
            )
        )
        # the burst is tagged and two groups drain before the polite tenant
        # shows up at all
        assert self.drain(policy, groups, rounds=2) == [("agg0",), ("agg1",)]
        groups[("polite",)] = [make_job("p", 99, tenant="polite")]
        # its first group outranks the burst's remaining backlog immediately
        assert policy.select(groups) == ("polite",)

    def test_weights_divide_service_proportionally(self):
        policy = WeightedFairPolicy(tenant_weights={"paying": 3.0, "free": 1.0})
        groups = self.groups(
            *(
                ((f"{tenant}{i}",), [make_job(f"{tenant}{i}", i, tenant=tenant)])
                for tenant in ("paying", "free")
                for i in range(4)
            )
        )
        order = self.drain(policy, groups)
        # equal-cost groups, 3:1 weights: the paying tenant drains three
        # groups for every one of the free tenant's while both are backlogged
        first_free = next(i for i, key in enumerate(order) if key[0].startswith("free"))
        assert order[:3] == [("paying0",), ("paying1",), ("paying2",)]
        assert first_free == 3
        paying_served = sum(
            1 for key in order[:5] if key[0].startswith("paying")
        )
        assert paying_served == 4  # 4 paying + 1 free in the first 5 slots

    def test_unserved_tenant_is_never_starved(self):
        """Regression guard: a backlogged tenant's tag is assigned once, so a
        heavier competitor cannot keep resetting it and starve the tenant."""
        policy = WeightedFairPolicy(tenant_weights={"heavy": 100.0})
        groups = self.groups(
            *(((f"h{i}",), [make_job(f"h{i}", i, tenant="heavy")]) for i in range(8))
        )
        groups[("light",)] = [make_job("l", 99, tenant="light")]
        order = self.drain(policy, groups)
        # weight 100 lets the heavy tenant drain its whole backlog of 8
        # cheap groups first, but the light group's arrival-time tag is
        # preserved — it is served, not pushed back forever
        assert ("light",) in order

    def test_forget_group_refunds_fused_away_virtual_time(self):
        """Regression: a group fused into a shared run as a plan rider
        (claimed via claim_groups, never selected) must not leave its booked
        cost on the tenant's virtual tail — otherwise the tenant's future
        groups are deprioritized for work that rode along free."""
        def run_sequence(refund: bool):
            policy = WeightedFairPolicy()
            fused_jobs = [make_job("t2", 2, tenant="t")]
            groups = self.groups(
                (("t1",), [make_job("t1", 1, tenant="t")]),
                (("t2",), fused_jobs),
                (("other",), [make_job("o", 3, tenant="other")]),
            )
            # One select tags every visible group, charging tenant "t" twice.
            assert policy.select(groups) == ("t1",)
            groups.pop(("t1",))
            # The second group rides along with a fused plan instead of
            # draining through select (claim_groups semantics).
            groups.pop(("t2",))
            if refund:
                policy.forget_group(("t2",), fused_jobs)
            assert policy.select(groups) == ("other",)
            groups.pop(("other",))
            # Fresh round: one new group per tenant, "t" arriving first.
            groups[("t3",)] = [make_job("t3", 4, tenant="t")]
            groups[("other2",)] = [make_job("o2", 5, tenant="other")]
            return policy.select(groups)

        # With the refund, both tenants' tails are level again and "t" wins
        # its arrival-order tie; without it, the fused-away group's charge
        # still demotes "t" behind the other tenant.
        assert run_sequence(refund=True) == ("t3",)
        assert run_sequence(refund=False) == ("other2",)

    def test_forget_group_ignores_unknown_and_stale_tags(self):
        policy = WeightedFairPolicy()
        jobs = [make_job("a", 1, tenant="t")]
        policy.forget_group(("never-seen",), jobs)  # no-op, no error
        groups = self.groups((("a",), jobs))
        policy.select(groups)  # tags and immediately selects (tag consumed)
        policy.forget_group(("a",), jobs)  # tag already gone: no-op
        # A recreated group under the same key must not refund the vanished
        # incarnation's charge to the new jobs' tenant.
        first = [make_job("b1", 2, tenant="t")]
        groups = self.groups((("b",), first), (("z",), [make_job("z", 9)]))
        policy.select(groups)  # tags both; selects ("b",)... or ("z",)?
        tail_before = dict(policy._tenant_tail)
        recreated = [make_job("b2", 3, tenant="t")]
        policy.forget_group(("b",), recreated)
        assert policy._tenant_tail == tail_before

    def test_recreated_batch_key_does_not_inherit_stale_tag(self):
        """Regression: a group emptied by discard() and recreated under the
        same batch key by a different submission must be tagged afresh, not
        scheduled at the vanished group's frozen priority."""
        policy = WeightedFairPolicy()
        wide = [make_job(f"w{i}", i, tenant="bulky") for i in range(10)]
        groups = self.groups(
            (("K",), wide),
            (("L",), [make_job("l", 90, tenant="other")]),
        )
        assert policy.select(groups) == ("L",)  # cost 1 beats cost 10
        groups.pop(("L",))
        # the wide group vanishes without being selected (every job
        # withdrawn), and the key is recreated by a different tenant's
        # cheap single job before the next select
        groups.pop(("K",))
        groups[("K",)] = [make_job("n", 91, tenant="newcomer")]
        groups[("M",)] = [make_job(f"m{i}", i, tenant="other") for i in range(5)]
        # fresh tag: virtual finish ~1, beating the 5-wide group — with the
        # stale (finish=10) tag it would lose and be scheduled dead last
        assert policy.select(groups) == ("K",)
        model = CostModel()
        cheap = ("small", "bfs", "merged_aligned", "default")
        costly = ("huge", "bfs", "merged_aligned", "default")
        model.observe(cheap, 1, 0.001)
        model.observe(costly, 1, 1.0)
        policy = WeightedFairPolicy(cost_model=model)
        groups = self.groups(
            (costly, [make_job("big", 0, tenant="a")]),
            (cheap, [make_job("small", 1, tenant="b")]),
        )
        # equal weights, but the cheap group's virtual finish comes first
        # even though the costly one arrived earlier
        assert policy.select(groups) == cheap

    def test_tenant_weights_validation(self):
        assert normalize_tenant_weights(None) is None
        assert normalize_tenant_weights({"b": 2, "a": 1}) == (("a", 1.0), ("b", 2.0))
        for bad in (
            {"a": 0},
            {"a": -1.0},
            {"a": float("inf")},
            {"a": float("nan")},
            {"a": "heavy"},
            {"a": True},
            {"": 1.0},
            {7: 1.0},
        ):
            with pytest.raises(ConfigurationError):
                normalize_tenant_weights(bad)
        with pytest.raises(ConfigurationError):
            ServiceConfig(tenant_weights={"a": -2.0})
        config = ServiceConfig(policy="wfq", tenant_weights={"a": 2.5})
        assert config.tenant_weights == (("a", 2.5),)

    def test_config_accepts_wfq_policy(self):
        assert "wfq" in SCHEDULING_POLICIES
        assert ServiceConfig(policy="wfq").policy == "wfq"
        with pytest.raises(ConfigurationError):
            ServiceConfig(cost_alpha=0.0)
        with pytest.raises(ConfigurationError):
            ServiceConfig(cost_alpha=1.5)


# --------------------------------------------------------------------- #
# Queue-level scheduling + admission
# --------------------------------------------------------------------- #
class TestQueueScheduling:
    def test_deadline_job_makes_its_whole_group_urgent(self):
        queue = RequestQueue(policy="edf")
        sssp_first = Job(
            job_id="s", request=TraversalRequest(Application.SSSP, "g", source=0)
        )
        queue.push_or_join(sssp_first)
        relaxed = [make_job(f"r{i}", i) for i in range(2)]
        for job in relaxed:
            queue.push_or_join(job)
        # deadline/tenant are excluded from batch_key, so the urgent job
        # lands in the existing BFS group — and drags the whole group ahead
        # of the older SSSP group under EDF.
        urgent = make_job("u", 10, deadline=1.0, tenant="acme")
        queue.push_or_join(urgent)
        batch = queue.pop_batch()
        assert urgent in batch and relaxed[0] in batch
        assert queue.pop_batch() == [sssp_first]

    def test_pop_order_across_groups(self):
        queue = RequestQueue(policy="edf")
        bulk = [make_job(f"b{i}", i) for i in range(3)]
        for job in bulk:
            queue.push_or_join(job)
        urgent = Job(
            job_id="u",
            request=TraversalRequest(
                Application.SSSP, "g", source=0, deadline=0.5
            ),
        )
        queue.push_or_join(urgent)
        assert queue.pop_batch() == [urgent]
        assert queue.pop_batch() == bulk
        assert queue.pop_batch() == []

    def test_queue_limit_rejects_when_full(self):
        queue = RequestQueue()
        queue.push_or_join(make_job("a", 0), queue_limit=2)
        queue.push_or_join(make_job("b", 1), queue_limit=2)
        with pytest.raises(AdmissionError):
            queue.push_or_join(make_job("c", 2), queue_limit=2)
        # draining frees capacity again
        queue.pop_batch()
        outcome, _ = queue.push_or_join(make_job("d", 3), queue_limit=2)
        assert outcome == "queued"

    def test_join_and_cache_hits_bypass_admission(self):
        queue = RequestQueue()
        first = make_job("a", 0)
        queue.push_or_join(first, queue_limit=1)
        outcome, payload = queue.push_or_join(make_job("b", 0), queue_limit=1)
        assert outcome == "joined" and payload is first
        sentinel = object()
        outcome, payload = queue.push_or_join(
            make_job("c", 99), cache_lookup=lambda key: sentinel, queue_limit=1
        )
        assert outcome == "cached" and payload is sentinel

    def test_tenant_quota_is_per_tenant(self):
        queue = RequestQueue()
        queue.push_or_join(make_job("a", 0, tenant="acme"), tenant_quota=1)
        with pytest.raises(AdmissionError) as excinfo:
            queue.push_or_join(make_job("b", 1, tenant="acme"), tenant_quota=1)
        assert excinfo.value.tenant == "acme"
        # other tenants and the anonymous bucket are unaffected
        queue.push_or_join(make_job("c", 2, tenant="globex"), tenant_quota=1)
        queue.push_or_join(make_job("d", 3), tenant_quota=1)
        with pytest.raises(AdmissionError):
            queue.push_or_join(make_job("e", 4), tenant_quota=1)
        assert queue.pending_by_tenant() == {"acme": 1, "globex": 1, None: 1}

    def test_join_merges_deadlines_min_schedule_max_expiry(self):
        queue = RequestQueue(policy="edf")
        shared = make_job("a", 0, deadline=5.0)
        queue.push_or_join(shared)
        joiner = make_job("b", 0, deadline=1.0)
        outcome, payload = queue.push_or_join(joiner)
        assert outcome == "joined" and payload is shared
        # the most urgent waiter drives scheduling, the most patient expiry
        assert shared.deadline_at == pytest.approx(joiner.submitted_at + 1.0, abs=0.5)
        assert shared.expire_at == pytest.approx(shared.submitted_at + 5.0, abs=0.5)
        assert shared.deadline_at < shared.expire_at
        later = make_job("c", 0, deadline=60.0)
        queue.push_or_join(later)
        assert shared.expire_at == pytest.approx(later.submitted_at + 60.0, abs=1.0)

    def test_deadline_free_joiner_makes_job_unexpirable(self):
        queue = RequestQueue(policy="edf")
        urgent = make_job("a", 0, deadline=0.001)
        queue.push_or_join(urgent)
        queue.push_or_join(make_job("b", 0))  # joined, owed the result forever
        assert urgent.expire_at is None
        time.sleep(0.005)
        assert not urgent.expired()
        # scheduling urgency is retained for EDF even though expiry is off
        assert urgent.deadline_at is not None

    def test_urgent_joiner_promotes_relaxed_job(self):
        queue = RequestQueue(policy="edf")
        relaxed = make_job("r", 0)
        queue.push_or_join(relaxed)
        other_group = Job(
            job_id="s",
            request=TraversalRequest(Application.SSSP, "g", source=0, deadline=9.0),
        )
        queue.push_or_join(other_group)
        # a duplicate of the relaxed job arrives with a tighter deadline:
        # its urgency transfers to the shared job and outranks the SSSP group
        queue.push_or_join(make_job("u", 0, deadline=1.0))
        assert relaxed.deadline_at is not None
        assert relaxed.expire_at is None  # the original waiter has no deadline
        assert queue.pop_batch() == [relaxed]

    def test_discard_recomputes_group_urgency(self):
        queue = RequestQueue(policy="edf")
        tight = make_job("t", 0, deadline=1.0)
        patient = make_job("p", 1, deadline=120.0)
        queue.push_or_join(tight)
        queue.push_or_join(patient)
        middle = Job(
            job_id="m",
            request=TraversalRequest(Application.SSSP, "g", source=0, deadline=30.0),
        )
        queue.push_or_join(middle)
        # withdrawing the tight job must demote its group below the SSSP one
        assert queue.discard(tight)
        assert queue.pop_batch() == [middle]
        assert queue.pop_batch() == [patient]

    def test_discard_recomputes_group_deadline_cache(self):
        """Pin the incremental `_group_deadlines` maintenance in discard():
        withdrawing the most urgent member must recompute the survivors'
        deadline, and emptying the group must drop both entries."""
        queue = RequestQueue(policy="edf")
        tight = make_job("t", 0, deadline=1.0)
        patient = make_job("p", 1, deadline=120.0)
        free = make_job("f", 2)
        for job in (tight, patient, free):
            queue.push_or_join(job)
        key = tight.request.batch_key
        assert queue._group_deadlines[key] == pytest.approx(tight.deadline_at)
        # a deadline-free withdrawal takes the cheap branch: cache untouched
        assert queue.discard(free)
        assert queue._group_deadlines[key] == pytest.approx(tight.deadline_at)
        # the urgent member leaves: survivors' (laxer) deadline is recomputed
        assert queue.discard(tight)
        assert queue._group_deadlines[key] == pytest.approx(patient.deadline_at)
        # last member out: group and deadline entry both vanish
        assert queue.discard(patient)
        assert key not in queue._group_deadlines
        assert queue.pop_batch() == []

    def test_fused_away_group_refunds_wfq_virtual_time_at_queue_level(self):
        """Pin the WFQ refund end-to-end through the queue: a group drained
        as a fusion rider (never selected by the policy) must hand its booked
        virtual time back to its tenant via forget_group."""
        policy = WeightedFairPolicy()
        queue = RequestQueue(policy=policy)

        def push_cc(job_id, strategy, tenant):
            job = Job(
                job_id=job_id,
                request=TraversalRequest(
                    Application.CC, "g", strategy=strategy, tenant=tenant
                ),
            )
            queue.push_or_join(job)
            return job

        push_cc("t1", "merged_aligned", "t")
        push_cc("t2", "uvm", "t")
        other = make_job("o", 3, tenant="other")
        queue.push_or_join(other)
        # The drain selects tenant "t"'s first CC group (arrival-order tie
        # with "other"), tagging everything visible: "t" is charged twice.
        anchor = queue.pop_batch()
        assert anchor[0].job_id == "t1"
        # The sibling CC group rides along with the anchor as a plan rider
        # instead of consuming its own drain; its charge must be refunded.
        snapshot = queue.snapshot_groups()
        rider_keys = [
            key for key in snapshot if key[0] == "g" and key[1] == "cc"
        ]
        claimed = queue.claim_groups(rider_keys)
        riders = [claimed[key] for key in rider_keys]
        assert [group[0].job_id for group in riders] == ["t2"]
        assert policy._tenant_tail["t"] == pytest.approx(
            policy._tenant_tail["other"]
        )
        assert queue.pop_batch() == [other]
        # Completion releases the dedup entries, as the worker path would.
        for job in (*anchor, *riders[0], other):
            queue.release(job)
        # Fresh round: with the refund both tenants are level again, so "t"
        # wins its arrival-order tie; without it "t" would sort last.
        late_t = push_cc("t3", "merged_aligned", "t")
        late_other = make_job("o2", 5, tenant="other")
        queue.push_or_join(late_other)
        assert queue.pop_batch() == [late_t]

    def test_expire_is_atomic_with_dedup_retirement(self):
        queue = RequestQueue()
        lapsed = make_job("a", 0, deadline=0.001)
        queue.push_or_join(lapsed)
        queue.pop_batch()
        time.sleep(0.005)
        now = time.perf_counter()
        assert queue.expire(lapsed, now) is True
        # the dedup entry is gone: an identical request re-executes on its own
        outcome, _ = queue.push_or_join(make_job("b", 0))
        assert outcome == "queued"
        # a job rescued by a deadline-free joiner is never expired
        rescued = make_job("c", 5, deadline=0.001)
        queue.push_or_join(rescued)
        queue.push_or_join(make_job("d", 5))  # joins, clears expire_at
        queue.pop_batch()
        time.sleep(0.005)
        assert queue.expire(rescued, time.perf_counter()) is False
        assert queue.find_inflight(rescued.request.cache_key) is rescued

    def test_infeasible_deadline_rejected_at_push(self):
        model = CostModel()
        family = TraversalRequest(Application.BFS, "g", source=0).batch_key
        model.observe(family, 1, 0.5)  # this family costs ~500ms per job
        queue = RequestQueue(cost_model=model)
        for i in range(3):
            queue.push_or_join(make_job(f"b{i}", i))
        # ~1.5s of backlog + ~0.5s of its own execution cannot fit in 0.2s
        with pytest.raises(InfeasibleDeadlineError) as excinfo:
            queue.push_or_join(
                make_job("doomed", 9, deadline=0.2, tenant="acme"),
                reject_infeasible=True,
            )
        assert excinfo.value.tenant == "acme"
        assert isinstance(excinfo.value, AdmissionError)  # one except clause
        # a feasible budget is admitted, and more workers shrink the wait
        outcome, _ = queue.push_or_join(
            make_job("ok", 10, deadline=30.0), reject_infeasible=True
        )
        assert outcome == "queued"

    def test_infeasibility_check_is_opt_in_and_spares_joiners(self):
        model = CostModel()
        family = TraversalRequest(Application.BFS, "g", source=0).batch_key
        model.observe(family, 1, 0.5)
        queue = RequestQueue(cost_model=model)
        first = make_job("a", 0)
        queue.push_or_join(first)
        # without the flag, a hopeless deadline is admitted (and would later
        # expire in the queue — the pre-admission behaviour)
        outcome, _ = queue.push_or_join(
            make_job("hopeless", 5, deadline=1e-6)
        )
        assert outcome == "queued"
        # duplicates join the in-flight job and bypass admission entirely,
        # however hopeless their own budget is
        outcome, payload = queue.push_or_join(
            make_job("dup", 0, deadline=1e-6), reject_infeasible=True
        )
        assert outcome == "joined" and payload is first

    def test_tenant_accounting_survives_pop_and_discard(self):
        queue = RequestQueue()
        jobs = [make_job(f"j{i}", i, tenant="acme") for i in range(3)]
        for job in jobs:
            queue.push_or_join(job)
        assert queue.discard(jobs[0])
        assert queue.pending_by_tenant() == {"acme": 2}
        queue.pop_batch()
        assert queue.pending_by_tenant() == {}
        assert queue.pending_count() == 0


# --------------------------------------------------------------------- #
# Service-level scheduling, admission, deadlines
# --------------------------------------------------------------------- #
class TestServiceScheduling:
    def submit_contrast_workload(self, service, engine, graph_a, graph_b):
        """Blocker + an early relaxed group + a late deadline group."""
        blocker = service.submit(TraversalRequest("cc", graph_a.name))
        deadline = time.monotonic() + 5
        while not engine.calls and time.monotonic() < deadline:
            time.sleep(0.005)
        assert engine.calls, "worker never picked up the blocker"
        relaxed = [
            service.submit(TraversalRequest("bfs", graph_a.name, source=s))
            for s in (1, 2)
        ]
        urgent = [
            service.submit(
                TraversalRequest("sssp", graph_b.name, source=s, deadline=60.0)
            )
            for s in (1, 2)
        ]
        return blocker, relaxed, urgent

    @pytest.mark.parametrize(
        "policy,urgent_first", [("fifo", False), ("edf", True)]
    )
    def test_drain_order_contrast(
        self, registry, random_graph, uniform_graph, policy, urgent_first
    ):
        engine = GatedCountingEngine(gated=True)
        with make_service(
            registry, engine=engine, max_workers=1, policy=policy
        ) as service:
            blocker, relaxed, urgent = self.submit_contrast_workload(
                service, engine, random_graph, uniform_graph
            )
            engine.gate.set()
            assert service.wait_all(timeout=30)
            for job in (blocker, *relaxed, *urgent):
                assert job.status is JobStatus.DONE
        relaxed_pos = engine.calls.index(relaxed[0].request.cache_key)
        urgent_pos = engine.calls.index(urgent[0].request.cache_key)
        assert (urgent_pos < relaxed_pos) == urgent_first

    def test_expired_job_fails_before_execution(self, registry, random_graph):
        engine = GatedCountingEngine(gated=True)
        with make_service(
            registry, engine=engine, max_workers=1, policy="edf"
        ) as service:
            blocker = service.submit(TraversalRequest("cc", random_graph.name))
            deadline = time.monotonic() + 5
            while not engine.calls and time.monotonic() < deadline:
                time.sleep(0.005)
            doomed = service.submit(
                TraversalRequest("bfs", random_graph.name, source=1, deadline=0.01)
            )
            time.sleep(0.05)  # let the deadline lapse while queued
            engine.gate.set()
            assert service.wait_all(timeout=30)
            assert blocker.status is JobStatus.DONE
            assert doomed.status is JobStatus.FAILED
            assert isinstance(doomed.error, DeadlineExceededError)
            with pytest.raises(JobFailedError):
                service.result(doomed, timeout=1)
        stats = service.stats()
        assert stats.expired == 1
        assert stats.deadlines_missed == 1
        assert stats.deadlines_met == 0
        # the expired job never reached the engine
        assert len(engine.calls) == 1

    def test_deadline_free_duplicate_is_not_failed_by_expiry(
        self, registry, random_graph
    ):
        """Regression: a no-deadline duplicate joined onto a deadline job
        used to inherit the deadline's fate — expiry killed the shared job
        and failed a waiter that never asked for a deadline."""
        engine = GatedCountingEngine(gated=True)
        with make_service(
            registry, engine=engine, max_workers=1, policy="edf"
        ) as service:
            blocker = service.submit(TraversalRequest("cc", random_graph.name))
            deadline = time.monotonic() + 5
            while not engine.calls and time.monotonic() < deadline:
                time.sleep(0.005)
            urgent = service.submit(
                TraversalRequest("bfs", random_graph.name, source=1, deadline=0.01)
            )
            patient = service.submit(
                TraversalRequest("bfs", random_graph.name, source=1)
            )
            assert patient is urgent  # deduplicated onto the same job
            time.sleep(0.05)  # the urgent waiter's budget lapses in queue
            engine.gate.set()
            assert service.wait_all(timeout=30)
            # the shared job executed for the patient waiter's sake
            assert urgent.status is JobStatus.DONE
            assert blocker.status is JobStatus.DONE
        stats = service.stats()
        assert stats.expired == 0
        # the urgent waiter's deadline was still missed — and counted
        assert stats.deadlines_missed == 1

    def test_mixed_budget_waiters_judged_individually(
        self, registry, random_graph
    ):
        """A dedup-shared job with a tight and a patient budget counts one
        miss and one met — not a single verdict from the tightest deadline."""
        engine = GatedCountingEngine(gated=True)
        with make_service(
            registry, engine=engine, max_workers=1, policy="edf"
        ) as service:
            blocker = service.submit(TraversalRequest("cc", random_graph.name))
            deadline = time.monotonic() + 5
            while not engine.calls and time.monotonic() < deadline:
                time.sleep(0.005)
            tight = service.submit(
                TraversalRequest("bfs", random_graph.name, source=1, deadline=0.01)
            )
            patient = service.submit(
                TraversalRequest("bfs", random_graph.name, source=1, deadline=60.0)
            )
            assert patient is tight  # shared job, two deadline waiters
            time.sleep(0.05)  # the tight budget lapses, the patient one holds
            engine.gate.set()
            assert service.wait_all(timeout=30)
            assert blocker.status is JobStatus.DONE
            # the job still expires only past the *latest* waiter deadline,
            # so it ran and completed for the patient waiter
            assert tight.status is JobStatus.DONE
        stats = service.stats()
        assert stats.expired == 0
        assert stats.deadlines_met == 1
        assert stats.deadlines_missed == 1

    def test_met_deadline_counted(self, registry, random_graph):
        with make_service(registry, policy="edf") as service:
            job = service.submit(
                TraversalRequest("bfs", random_graph.name, source=0, deadline=30.0)
            )
            service.result(job, timeout=30)
            assert job.met_deadline is True
            service.close()  # flush worker-side accounting before reading stats
        stats = service.stats()
        assert stats.deadlines_met == 1
        assert stats.deadlines_missed == 0

    def test_full_queue_submit_raises_admission_error(self, registry, random_graph):
        engine = GatedCountingEngine(gated=True)
        service = make_service(
            registry, engine=engine, max_workers=1, queue_limit=2
        )
        try:
            blocker = service.submit(TraversalRequest("cc", random_graph.name))
            deadline = time.monotonic() + 5
            while not engine.calls and time.monotonic() < deadline:
                time.sleep(0.005)
            queued = [
                service.submit(TraversalRequest("bfs", random_graph.name, source=s))
                for s in (1, 2)
            ]
            with pytest.raises(AdmissionError):
                service.submit(TraversalRequest("bfs", random_graph.name, source=3))
            # duplicates of queued work are still admitted (they join)
            dup = service.submit(TraversalRequest("bfs", random_graph.name, source=1))
            assert dup is queued[0]
            assert service.stats().rejected == 1
        finally:
            engine.gate.set()
            service.close()
        assert blocker.status is JobStatus.DONE

    def test_tenant_quota_enforced_by_service(self, registry, random_graph):
        engine = GatedCountingEngine(gated=True)
        service = make_service(
            registry, engine=engine, max_workers=1, tenant_quota=1
        )
        try:
            service.submit(TraversalRequest("cc", random_graph.name, tenant="bulk"))
            deadline = time.monotonic() + 5
            while not engine.calls and time.monotonic() < deadline:
                time.sleep(0.005)
            service.submit(
                TraversalRequest("bfs", random_graph.name, source=1, tenant="acme")
            )
            with pytest.raises(AdmissionError):
                service.submit(
                    TraversalRequest("bfs", random_graph.name, source=2, tenant="acme")
                )
            # a different tenant still gets in
            service.submit(
                TraversalRequest("bfs", random_graph.name, source=3, tenant="globex"
                )
            )
        finally:
            engine.gate.set()
            service.close()

    def test_wfq_polite_tenant_jumps_aggressive_burst(
        self, registry, random_graph, uniform_graph
    ):
        """Two-tenant skewed burst: WFQ serves the polite tenant's group
        ahead of the aggressive backlog that arrived first."""
        engine = GatedCountingEngine(gated=True)
        with make_service(
            registry,
            engine=engine,
            max_workers=1,
            policy="wfq",
            tenant_weights={"polite": 4.0, "aggressive": 1.0},
        ) as service:
            blocker = service.submit(
                TraversalRequest("cc", random_graph.name, tenant="aggressive")
            )
            deadline = time.monotonic() + 5
            while not engine.calls and time.monotonic() < deadline:
                time.sleep(0.005)
            assert engine.calls, "worker never picked up the blocker"
            # the aggressive burst: three distinct batch groups, six jobs
            aggressive = [
                service.submit(
                    TraversalRequest(
                        app, random_graph.name, source=s,
                        strategy=strategy, tenant="aggressive",
                    )
                )
                for app, strategy in (
                    ("bfs", "merged_aligned"),
                    ("bfs", "uvm"),
                    ("sssp", "merged_aligned"),
                )
                for s in (1, 2)
            ]
            polite = service.submit(
                TraversalRequest(
                    "bfs", uniform_graph.name, source=0, tenant="polite"
                )
            )
            engine.gate.set()
            assert service.wait_all(timeout=30)
        order = [engine.calls.index(job.request.cache_key) for job in aggressive]
        polite_pos = engine.calls.index(polite.request.cache_key)
        # the polite group drains before every aggressive burst group
        assert polite_pos < min(order)
        stats = service.stats()
        assert stats.tenants["polite"].completed == 1
        assert stats.tenants["aggressive"].completed == 1 + len(aggressive)
        assert stats.tenants["polite"].missed == 0

    def test_infeasible_deadline_rejected_at_submit_not_expired(
        self, registry, random_graph
    ):
        engine = GatedCountingEngine(gated=True)
        service = make_service(
            registry, engine=engine, max_workers=1, reject_infeasible=True
        )
        try:
            blocker = service.submit(TraversalRequest("cc", random_graph.name))
            deadline = time.monotonic() + 5
            while not engine.calls and time.monotonic() < deadline:
                time.sleep(0.005)
            backlog = [
                service.submit(TraversalRequest("bfs", random_graph.name, source=s))
                for s in (1, 2, 3, 4)
            ]
            with pytest.raises(InfeasibleDeadlineError):
                service.submit(
                    TraversalRequest(
                        "bfs", random_graph.name, source=9, deadline=1e-4
                    )
                )
            engine.gate.set()
            assert service.wait_all(timeout=30)
            for job in (blocker, *backlog):
                assert job.status is JobStatus.DONE
        finally:
            engine.gate.set()
            service.close()
        stats = service.stats()
        # rejected at the front door, never enqueued: no expiry, no failure
        assert stats.rejected == 1
        assert stats.rejected_infeasible == 1
        assert stats.expired == 0
        assert stats.failed == 0
        assert "(1 infeasible)" in stats.describe()

    def test_queue_expiry_accounting_distinct_from_infeasible(
        self, registry, random_graph
    ):
        """The same hopeless deadline: without admission control it is
        admitted, expires in the queue, and lands in `expired` — not in
        `rejected_infeasible`."""
        engine = GatedCountingEngine(gated=True)
        service = make_service(registry, engine=engine, max_workers=1)
        try:
            blocker = service.submit(TraversalRequest("cc", random_graph.name))
            deadline = time.monotonic() + 5
            while not engine.calls and time.monotonic() < deadline:
                time.sleep(0.005)
            doomed = service.submit(
                TraversalRequest("bfs", random_graph.name, source=9, deadline=0.01)
            )
            time.sleep(0.05)
            engine.gate.set()
            assert service.wait_all(timeout=30)
            assert doomed.status is JobStatus.FAILED
            assert isinstance(doomed.error, DeadlineExceededError)
        finally:
            engine.gate.set()
            service.close()
        stats = service.stats()
        assert stats.expired == 1
        assert stats.rejected_infeasible == 0
        assert stats.rejected == 0
        assert stats.tenants[None].missed == 1

    def test_cost_model_converges_to_observed_engine_seconds(
        self, registry, random_graph
    ):
        with make_service(registry, max_workers=1) as service:
            jobs = []
            for s in range(6):
                # submit-and-wait one at a time: each job drains as its own
                # singleton group, giving six distinct observations
                job = service.submit(
                    TraversalRequest("bfs", random_graph.name, source=s)
                )
                service.result(job, timeout=30)
                jobs.append(job)
            service.close()
        stats = service.stats()
        model = service.cost_model
        # the service pins requests to its default system, so the executed
        # family key carries the platform fingerprint, not "default"
        family = jobs[0].request.batch_key
        assert model.family_samples(family) == 6
        assert stats.cost_model.families >= 1
        assert stats.cost_model.samples == 6
        # the EWMA estimate tracks what the engine actually costs: within a
        # small factor of the observed mean seconds per execution
        observed = stats.engine_seconds / stats.executions
        estimate = model.estimate_job(family)
        assert observed / 3 <= estimate <= observed * 3
        assert "cost model:" in stats.describe()

    def test_latency_percentiles_in_stats(self, registry, random_graph):
        with make_service(registry) as service:
            for source in range(4):
                service.result(
                    service.submit(
                        TraversalRequest("bfs", random_graph.name, source=source)
                    ),
                    timeout=30,
                )
            service.close()
        stats = service.stats()
        assert stats.latency.count == 4
        assert stats.latency.p95_seconds >= stats.latency.p50_seconds >= 0
        assert stats.queue_wait.count == 4
        assert stats.policy == "fifo"
        description = stats.describe()
        assert "scheduling: policy=fifo" in description
        assert "latency p50/p95/p99" in description

    def test_fifo_results_identical_to_edf(self, registry, random_graph):
        """Policies change order, never answers."""
        outcomes = {}
        for policy in ("fifo", "edf", "largest"):
            with make_service(registry, max_workers=1, policy=policy) as service:
                jobs = [
                    service.submit(
                        TraversalRequest("bfs", random_graph.name, source=s)
                    )
                    for s in range(4)
                ]
                outcomes[policy] = [
                    service.result(job, timeout=30).values.tolist() for job in jobs
                ]
        assert outcomes["fifo"] == outcomes["edf"] == outcomes["largest"]


class TestLatencyStats:
    def test_from_samples_empty(self):
        stats = LatencyStats.from_samples(())
        assert stats.count == 0 and stats.p95_seconds == 0.0

    def test_from_samples_percentiles(self):
        stats = LatencyStats.from_samples([0.1 * i for i in range(1, 101)])
        assert stats.count == 100
        assert stats.p50_seconds == pytest.approx(5.0, abs=0.2)
        assert stats.p95_seconds == pytest.approx(9.5, abs=0.2)
        assert stats.max_seconds == pytest.approx(10.0)
        assert "ms" in stats.describe_ms()

    def test_single_sample_is_every_percentile(self):
        stats = LatencyStats.from_samples([3.0])
        assert stats.p50_seconds == 3.0
        assert stats.p95_seconds == 3.0
        assert stats.p99_seconds == 3.0
        assert stats.max_seconds == 3.0

    def test_even_window_p50_rounds_up_not_down(self):
        """Regression: banker's rounding on `round(0.5)` returned the *lower*
        sample for even windows — p50 of two samples was the minimum."""
        stats = LatencyStats.from_samples([1.0, 9.0])
        assert stats.p50_seconds == 9.0
        assert stats.p95_seconds == 9.0

    def test_twenty_sample_window_percentiles(self):
        stats = LatencyStats.from_samples([float(i) for i in range(1, 21)])
        # ceil-based nearest rank over the 19 gaps: p50 -> index 10 (the
        # upper median), p95/p99 -> index 19 (the maximum)
        assert stats.p50_seconds == 11.0
        assert stats.p95_seconds == 20.0
        assert stats.p99_seconds == 20.0
        assert stats.max_seconds == 20.0

    def test_percentiles_are_monotone_in_fraction(self):
        for n in (1, 2, 3, 4, 5, 20):
            stats = LatencyStats.from_samples([float(i) for i in range(n)])
            assert (
                stats.p50_seconds
                <= stats.p95_seconds
                <= stats.p99_seconds
                <= stats.max_seconds
            )


# --------------------------------------------------------------------- #
# Workload / config plumbing
# --------------------------------------------------------------------- #
class TestWorkloadPlumbing:
    def test_config_from_spec_reads_scheduling_keys(self):
        spec = {
            "graphs": [{"name": "g", "generator": "rmat"}],
            "requests": [{"app": "bfs", "graph": "g"}],
            "policy": "edf",
            "queue_limit": 7,
            "tenant_quota": 3,
        }
        config = config_from_spec(spec)
        assert config.policy == "edf"
        assert config.queue_limit == 7
        assert config.tenant_quota == 3
        override = config_from_spec(spec, policy="largest", queue_limit=9)
        assert override.policy == "largest" and override.queue_limit == 9

    def test_config_from_spec_reads_wfq_keys(self):
        spec = {
            "graphs": [{"name": "g", "generator": "rmat"}],
            "requests": [{"app": "bfs", "graph": "g"}],
            "policy": "wfq",
            "tenant_weights": {"interactive": 4, "bulk": 1},
            "cost_alpha": 0.5,
            "reject_infeasible": True,
        }
        config = config_from_spec(spec)
        assert config.policy == "wfq"
        assert config.tenant_weights == (("bulk", 1.0), ("interactive", 4.0))
        assert config.cost_alpha == 0.5
        assert config.reject_infeasible is True
        # CLI-style overrides beat the file
        override = config_from_spec(
            spec, tenant_weights={"interactive": 2}, reject_infeasible=False
        )
        assert override.tenant_weights == (("interactive", 2.0),)
        assert override.reject_infeasible is False
        # defaults when the file says nothing
        bare = config_from_spec(
            {"graphs": [{"name": "g"}], "requests": [{"app": "bfs", "graph": "g"}]}
        )
        assert bare.tenant_weights is None
        assert bare.reject_infeasible is False
        assert bare.cost_alpha == ServiceConfig().cost_alpha

    def test_expand_requests_carries_deadline_and_tenant(self, random_graph):
        registry = GraphRegistry()
        registry.register_graph(random_graph)
        with make_service(registry) as service:
            spec = {
                "graphs": [],
                "requests": [
                    {
                        "app": "bfs",
                        "graph": random_graph.name,
                        "sources": [0, 1],
                        "deadline": 2.5,
                        "tenant": "acme",
                    }
                ],
            }
            requests = expand_requests(service, spec)
        assert len(requests) == 2
        assert all(r.deadline == 2.5 and r.tenant == "acme" for r in requests)
