"""Tests for the §6 neighbor-list compression extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph.compression import (
    CompressionSummary,
    compress_graph,
    compressed_list_sizes,
    decode_neighbor_list,
    encode_neighbor_list,
    project_compressed_traversal,
    varint_decode,
    varint_encode,
    varint_size,
)
from repro.timing import TimeBreakdown


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 16383, 16384, 2**31])
    def test_roundtrip(self, value):
        encoded = varint_encode(value)
        decoded, offset = varint_decode(encoded)
        assert decoded == value
        assert offset == len(encoded)

    def test_sizes(self):
        assert len(varint_encode(0)) == 1
        assert len(varint_encode(127)) == 1
        assert len(varint_encode(128)) == 2
        assert len(varint_encode(2**14)) == 3

    def test_vectorized_size_matches_encoding(self):
        values = np.array([0, 1, 127, 128, 16383, 16384, 10**9])
        sizes = varint_size(values)
        assert sizes.tolist() == [len(varint_encode(int(v))) for v in values]

    def test_negative_rejected(self):
        with pytest.raises(GraphFormatError):
            varint_encode(-1)
        with pytest.raises(GraphFormatError):
            varint_size(np.array([-1]))

    def test_truncated_decode_rejected(self):
        with pytest.raises(GraphFormatError):
            varint_decode(bytes([0x80]))


class TestNeighborListCodec:
    def test_roundtrip_simple(self):
        neighbors = np.array([3, 10, 11, 500])
        data = encode_neighbor_list(neighbors)
        assert np.array_equal(decode_neighbor_list(data, 4), neighbors)

    def test_empty_list(self):
        assert encode_neighbor_list(np.array([], dtype=np.int64)) == b""
        assert decode_neighbor_list(b"", 0).size == 0

    def test_unsorted_input_is_sorted_first(self):
        data = encode_neighbor_list(np.array([9, 2, 5]))
        assert decode_neighbor_list(data, 3).tolist() == [2, 5, 9]

    def test_close_neighbors_compress_well(self):
        clustered = encode_neighbor_list(np.arange(1000, 1064))
        scattered = encode_neighbor_list(np.arange(0, 64_000_000, 1_000_000))
        assert len(clustered) < len(scattered)

    def test_trailing_bytes_rejected(self):
        data = encode_neighbor_list(np.array([1, 2, 3])) + b"\x00"
        with pytest.raises(GraphFormatError):
            decode_neighbor_list(data, 3)

    @given(
        st.lists(st.integers(0, 2**40), min_size=0, max_size=64),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, neighbors):
        array = np.array(sorted(neighbors), dtype=np.int64)
        data = encode_neighbor_list(array)
        assert np.array_equal(decode_neighbor_list(data, array.size), array)


class TestGraphCompression:
    def test_sizes_match_exact_encoding(self, paper_example_graph):
        per_vertex = compressed_list_sizes(paper_example_graph)
        for vertex in range(paper_example_graph.num_vertices):
            expected = len(encode_neighbor_list(paper_example_graph.neighbors(vertex)))
            assert per_vertex[vertex] == expected

    def test_sizes_match_exact_encoding_on_random_graph(self, random_graph):
        per_vertex = compressed_list_sizes(random_graph)
        for vertex in range(0, random_graph.num_vertices, 37):
            expected = len(encode_neighbor_list(random_graph.neighbors(vertex)))
            assert per_vertex[vertex] == expected

    def test_summary(self, random_graph):
        summary = compress_graph(random_graph)
        assert summary.original_bytes == random_graph.edge_list_bytes
        assert 0 < summary.compressed_bytes < summary.original_bytes
        assert summary.ratio == pytest.approx(
            summary.compressed_bytes / summary.original_bytes
        )
        assert summary.savings_fraction == pytest.approx(1 - summary.ratio)
        assert summary.bytes_per_edge < random_graph.element_bytes

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        empty = CSRGraph(offsets=np.zeros(3, dtype=np.int64), edges=np.array([], dtype=np.int64))
        summary = compress_graph(empty)
        assert summary.compressed_bytes == 0
        assert summary.ratio == 1.0


class TestProjection:
    def make_breakdown(self):
        return TimeBreakdown(
            interconnect_seconds=1.0,
            dram_seconds=0.2,
            compute_seconds=0.1,
            kernel_launch_seconds=0.05,
        )

    def test_compression_shrinks_interconnect_time(self):
        summary = CompressionSummary(original_bytes=100, compressed_bytes=40, num_edges=10)
        projected = project_compressed_traversal(
            self.make_breakdown(), summary, edges_processed=10
        )
        assert projected.interconnect_seconds == pytest.approx(0.4)
        assert projected.total() < self.make_breakdown().total()

    def test_decompression_cost_added_to_compute(self):
        summary = CompressionSummary(original_bytes=100, compressed_bytes=40, num_edges=10)
        projected = project_compressed_traversal(
            self.make_breakdown(),
            summary,
            edges_processed=10**9,
            decompress_edges_per_second=1e9,
        )
        assert projected.compute_seconds == pytest.approx(0.1 + 1.0)

    def test_invalid_rate_rejected(self):
        summary = CompressionSummary(100, 40, 10)
        with pytest.raises(GraphFormatError):
            project_compressed_traversal(
                self.make_breakdown(), summary, 10, decompress_edges_per_second=0
            )
