"""Tests for repro.config: the calibrated platform models."""

import pytest

from repro.config import (
    DATASET_SCALE,
    DRAMConfig,
    GPUConfig,
    PCIE3_X16,
    PCIE4_X16,
    PCIeConfig,
    UVMConfig,
    ampere_pcie3,
    ampere_pcie4,
    default_system,
    titan_xp_pcie3,
    volta_pcie3,
)
from repro.errors import ConfigurationError


class TestPCIeConfig:
    def test_header_efficiency_matches_paper(self):
        # §3.3: 32B requests have >=36% TLP overhead, 128B about 12.3%.
        assert 1.0 - PCIE3_X16.header_efficiency(32) == pytest.approx(0.36, abs=0.01)
        assert 1.0 - PCIE3_X16.header_efficiency(128) == pytest.approx(0.123, abs=0.005)

    def test_memcpy_peak_close_to_measured(self):
        # The paper measures ~12.3 GB/s with cudaMemcpy on PCIe 3.0 x16.
        assert PCIE3_X16.block_transfer_gbps == pytest.approx(12.3, abs=0.5)
        # And roughly double that on PCIe 4.0.
        assert PCIE4_X16.block_transfer_gbps == pytest.approx(24.6, abs=1.0)

    def test_latency_limit_for_32b_requests(self):
        # §3.3: with 256 outstanding tags and ~1-1.6us RTT, a 32B-only stream
        # is capped at single-digit GB/s.
        capped = PCIE3_X16.latency_limited_gbps(32)
        assert 4.0 < capped < 9.0

    def test_effective_bandwidth_is_min_of_limits(self):
        for size in (32, 64, 96, 128):
            effective = PCIE3_X16.effective_read_gbps(size)
            assert effective <= PCIE3_X16.payload_limited_gbps(size) + 1e-9
            assert effective <= PCIE3_X16.latency_limited_gbps(size) + 1e-9

    def test_larger_requests_are_more_efficient(self):
        bandwidths = [PCIE3_X16.effective_read_gbps(size) for size in (32, 64, 96, 128)]
        assert bandwidths == sorted(bandwidths)

    def test_invalid_generation_rejected(self):
        with pytest.raises(ConfigurationError):
            PCIeConfig(generation=2)

    def test_invalid_request_size_rejected(self):
        with pytest.raises(ConfigurationError):
            PCIE3_X16.header_efficiency(0)


class TestDRAMConfig:
    def test_minimum_access_rounding(self):
        dram = DRAMConfig()
        assert dram.bytes_touched(32) == 64
        assert dram.bytes_touched(64) == 64
        assert dram.bytes_touched(96) == 128
        assert dram.bytes_touched(128) == 128

    def test_rejects_nonpositive_request(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig().bytes_touched(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(min_access_bytes=0)
        with pytest.raises(ConfigurationError):
            DRAMConfig(sequential_bandwidth_gbps=-1)


class TestGPUConfig:
    def test_device_memory_is_scaled_16gib(self):
        gpu = GPUConfig()
        assert gpu.memory_bytes == pytest.approx(16 * 1024**3 / DATASET_SCALE, rel=0.01)

    def test_sector_geometry(self):
        gpu = GPUConfig()
        assert gpu.warp_size == 32
        assert gpu.cacheline_bytes == 128
        assert gpu.sector_bytes == 32
        assert gpu.sectors_per_line == 4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GPUConfig(cacheline_bytes=100)
        with pytest.raises(ConfigurationError):
            GPUConfig(memory_bytes=0)


class TestUVMConfig:
    def test_defaults(self):
        uvm = UVMConfig()
        assert uvm.page_bytes == 4096
        assert uvm.read_mostly is True
        assert uvm.prefetch_pages >= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UVMConfig(page_bytes=1000)
        with pytest.raises(ConfigurationError):
            UVMConfig(fault_service_overhead_us=-1.0)
        with pytest.raises(ConfigurationError):
            UVMConfig(prefetch_pages=0)


class TestSystemPresets:
    def test_default_is_volta(self):
        assert default_system().pcie.generation == 3
        assert "V100" in default_system().gpu.name

    def test_ampere_differs_only_in_link(self):
        gen3 = ampere_pcie3()
        gen4 = ampere_pcie4()
        assert gen3.pcie.generation == 3
        assert gen4.pcie.generation == 4
        assert gen3.gpu.name == gen4.gpu.name

    def test_titan_has_less_memory_than_volta(self):
        assert titan_xp_pcie3().gpu.memory_bytes < volta_pcie3().gpu.memory_bytes

    def test_with_pcie_swaps_link(self):
        system = volta_pcie3().with_pcie(PCIE4_X16)
        assert system.pcie.generation == 4
        assert "PCIe 4.0" in system.name

    def test_with_gpu_memory(self):
        system = volta_pcie3().with_gpu_memory(1234567)
        assert system.gpu.memory_bytes == 1234567
