"""Tests for repro.arrays (vectorized ragged-range helpers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import ragged_gather_indices, repeat_by_counts


def reference_ragged(starts, lengths):
    pieces = [np.arange(s, s + l) for s, l in zip(starts, lengths)]
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pieces) if pieces else np.empty(0, dtype=np.int64)


class TestRaggedGatherIndices:
    def test_simple(self):
        out = ragged_gather_indices(np.array([0, 10]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 10, 11]

    def test_empty_ranges_skipped(self):
        out = ragged_gather_indices(np.array([5, 7, 20]), np.array([2, 0, 1]))
        assert out.tolist() == [5, 6, 20]

    def test_all_empty(self):
        out = ragged_gather_indices(np.array([1, 2, 3]), np.array([0, 0, 0]))
        assert out.size == 0

    def test_no_ranges(self):
        out = ragged_gather_indices(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert out.size == 0

    def test_single_long_range(self):
        out = ragged_gather_indices(np.array([100]), np.array([5]))
        assert out.tolist() == [100, 101, 102, 103, 104]

    def test_overlapping_and_descending_starts(self):
        starts = np.array([10, 3, 10])
        lengths = np.array([2, 3, 1])
        assert ragged_gather_indices(starts, lengths).tolist() == [10, 11, 3, 4, 5, 10]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ragged_gather_indices(np.array([1, 2]), np.array([1]))

    def test_negative_lengths_rejected(self):
        with pytest.raises(ValueError):
            ragged_gather_indices(np.array([1]), np.array([-1]))

    @given(
        st.lists(
            st.tuples(st.integers(0, 1000), st.integers(0, 50)),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_reference(self, ranges):
        starts = np.array([r[0] for r in ranges], dtype=np.int64)
        lengths = np.array([r[1] for r in ranges], dtype=np.int64)
        expected = reference_ragged(starts, lengths)
        actual = ragged_gather_indices(starts, lengths)
        assert actual.tolist() == expected.tolist()


class TestRepeatByCounts:
    def test_basic(self):
        out = repeat_by_counts(np.array([7, 8, 9]), np.array([2, 0, 3]))
        assert out.tolist() == [7, 7, 9, 9, 9]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            repeat_by_counts(np.array([1]), np.array([1, 2]))

    def test_negative_counts(self):
        with pytest.raises(ValueError):
            repeat_by_counts(np.array([1]), np.array([-2]))
