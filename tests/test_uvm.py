"""Tests for the UVM page-migration simulator."""

import numpy as np
import pytest

from repro.config import UVMConfig
from repro.errors import SimulationError
from repro.memsim.address_space import AddressSpace
from repro.memsim.gpu_memory import DeviceMemory
from repro.memsim.uvm import UVMSpace
from repro.types import MemorySpace

PAGE = 4096


def make_uvm(size_pages=64, capacity_pages=16, prefetch_pages=1, overhead_us=0.12):
    device = DeviceMemory(capacity_bytes=max(capacity_pages, 1) * PAGE + PAGE)
    space = AddressSpace(device)
    allocation = space.allocate("edges", size_pages * PAGE, MemorySpace.UVM)
    config = UVMConfig(
        page_bytes=PAGE,
        fault_service_overhead_us=overhead_us,
        prefetch_pages=prefetch_pages,
    )
    return UVMSpace(allocation, config, capacity_pages=capacity_pages)


class TestBasicMigration:
    def test_first_touch_faults(self):
        uvm = make_uvm()
        result = uvm.access_byte_ranges(np.array([0]), np.array([PAGE]))
        assert result.pages_touched == 1
        assert result.page_faults == 1
        assert result.migrated_bytes == PAGE
        assert uvm.is_resident(0)

    def test_second_touch_hits(self):
        uvm = make_uvm()
        uvm.access_byte_ranges(np.array([0]), np.array([PAGE]))
        result = uvm.access_byte_ranges(np.array([0]), np.array([PAGE]))
        assert result.page_faults == 0
        assert result.hit_pages == 1

    def test_range_spanning_pages(self):
        uvm = make_uvm()
        result = uvm.access_byte_ranges(np.array([100]), np.array([3 * PAGE + 10]))
        assert result.pages_touched == 4
        assert result.page_faults == 4

    def test_multiple_ranges_sharing_a_page_count_once(self):
        uvm = make_uvm()
        result = uvm.access_byte_ranges(
            np.array([0, 128, 256]), np.array([64, 192, 320])
        )
        assert result.pages_touched == 1
        assert result.page_faults == 1

    def test_empty_and_zero_length_ranges(self):
        uvm = make_uvm()
        result = uvm.access_byte_ranges(np.array([10]), np.array([10]))
        assert result.pages_touched == 0
        result = uvm.access_byte_ranges(np.array([]), np.array([]))
        assert result.pages_touched == 0

    def test_out_of_bounds_rejected(self):
        uvm = make_uvm(size_pages=2)
        with pytest.raises(SimulationError):
            uvm.access_byte_ranges(np.array([0]), np.array([3 * PAGE]))
        with pytest.raises(SimulationError):
            uvm.access_byte_ranges(np.array([-1]), np.array([10]))

    def test_mismatched_arrays_rejected(self):
        uvm = make_uvm()
        with pytest.raises(SimulationError):
            uvm.access_byte_ranges(np.array([0, 1]), np.array([10]))


class TestCapacityAndEviction:
    def test_graph_fitting_in_memory_never_remigrates(self):
        """The SK case: once everything is resident, amplification stays 1.0."""
        uvm = make_uvm(size_pages=8, capacity_pages=16)
        for _ in range(5):
            uvm.access_byte_ranges(np.array([0]), np.array([8 * PAGE]))
        assert uvm.total_migrated_bytes == 8 * PAGE

    def test_working_set_larger_than_cache_thrashes(self):
        """Repeated sweeps over a too-large region must keep migrating pages."""
        uvm = make_uvm(size_pages=64, capacity_pages=16)
        uvm.access_byte_ranges(np.array([0]), np.array([64 * PAGE]))
        first_pass = uvm.total_migrated_bytes
        uvm.access_byte_ranges(np.array([0]), np.array([64 * PAGE]))
        assert uvm.total_migrated_bytes > first_pass
        assert uvm.resident_pages <= 16 + 16  # capacity plus one in-flight chunk

    def test_eviction_is_lru(self):
        uvm = make_uvm(size_pages=8, capacity_pages=2)
        uvm.access_pages(np.array([0]))
        uvm.access_pages(np.array([1]))
        uvm.access_pages(np.array([2]))  # should evict page 0, the oldest
        assert not uvm.is_resident(0)
        assert uvm.is_resident(1)
        assert uvm.is_resident(2)

    def test_zero_capacity_always_faults(self):
        uvm = make_uvm(size_pages=4, capacity_pages=0)
        uvm.access_pages(np.array([1]))
        uvm.access_pages(np.array([1]))
        assert uvm.total_faults == 2

    def test_evictions_counted(self):
        uvm = make_uvm(size_pages=32, capacity_pages=4)
        uvm.access_byte_ranges(np.array([0]), np.array([32 * PAGE]))
        assert uvm.total_evictions > 0


class TestPrefetchGranularity:
    def test_fault_migrates_whole_prefetch_block(self):
        uvm = make_uvm(size_pages=64, capacity_pages=64, prefetch_pages=4)
        result = uvm.access_pages(np.array([5]))
        assert result.page_faults == 4  # pages 4..7
        assert uvm.is_resident(4) and uvm.is_resident(7)
        assert not uvm.is_resident(8)

    def test_resident_pages_of_block_not_migrated_again(self):
        uvm = make_uvm(size_pages=64, capacity_pages=64, prefetch_pages=4)
        uvm.access_pages(np.array([5]))
        result = uvm.access_pages(np.array([6]))
        assert result.page_faults == 0

    def test_block_clamped_at_region_end(self):
        uvm = make_uvm(size_pages=6, capacity_pages=16, prefetch_pages=4)
        result = uvm.access_pages(np.array([5]))
        assert result.page_faults == 2  # pages 4 and 5 only

    def test_prefetch_increases_amplification_for_sparse_access(self):
        sparse_pages = np.array([0, 16, 32, 48])
        no_prefetch = make_uvm(size_pages=64, capacity_pages=64, prefetch_pages=1)
        with_prefetch = make_uvm(size_pages=64, capacity_pages=64, prefetch_pages=8)
        no_prefetch.access_pages(sparse_pages)
        with_prefetch.access_pages(sparse_pages)
        assert with_prefetch.total_migrated_bytes > no_prefetch.total_migrated_bytes


class TestAccounting:
    def test_fault_handling_seconds(self):
        uvm = make_uvm(overhead_us=0.5)
        uvm.access_byte_ranges(np.array([0]), np.array([4 * PAGE]))
        assert uvm.fault_handling_seconds() == pytest.approx(4 * 0.5e-6)
        assert uvm.fault_handling_seconds(10) == pytest.approx(10 * 0.5e-6)

    def test_reset(self):
        uvm = make_uvm()
        uvm.access_byte_ranges(np.array([0]), np.array([2 * PAGE]))
        uvm.reset()
        assert uvm.total_faults == 0
        assert uvm.resident_pages == 0
        assert uvm.total_migrated_bytes == 0

    def test_invalid_page_queries(self):
        uvm = make_uvm(size_pages=4)
        with pytest.raises(SimulationError):
            uvm.is_resident(99)
        with pytest.raises(SimulationError):
            uvm.access_pages(np.array([99]))

    def test_negative_capacity_rejected(self):
        with pytest.raises(SimulationError):
            make_uvm(capacity_pages=-1)
