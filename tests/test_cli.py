"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list_targets(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure9" in output
        assert "table3" in output

    def test_unknown_target(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_figure4_runs(self, capsys):
        assert main(["figure4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "regenerated in" in output

    def test_figure6_with_reduced_scale(self, capsys):
        # figure6 only needs the datasets, so it is fast even via the CLI when
        # the scale is reduced.
        assert main(["figure6", "--sources", "1", "--scale", "40000"]) == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "GK" in output
