"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list_targets(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure9" in output
        assert "table3" in output

    def test_unknown_target(self, capsys):
        assert main(["figure99"]) == 2
        assert "unknown target" in capsys.readouterr().err

    def test_figure4_runs(self, capsys):
        assert main(["figure4"]) == 0
        output = capsys.readouterr().out
        assert "Figure 4" in output
        assert "regenerated in" in output

    def test_figure6_with_reduced_scale(self, capsys):
        # figure6 only needs the datasets, so it is fast even via the CLI when
        # the scale is reduced.
        assert main(["figure6", "--sources", "1", "--scale", "40000"]) == 0
        output = capsys.readouterr().out
        assert "Figure 6" in output
        assert "GK" in output


class TestBenchTraversalCLI:
    def test_apps_and_lanes_knobs(self, tmp_path, capsys):
        # A tiny graph keeps this a smoke test of the knobs, not a benchmark.
        report_path = tmp_path / "bench.json"
        assert (
            main(
                [
                    "bench-traversal",
                    "--vertices", "400",
                    "--edges", "3000",
                    "--sources", "8",
                    "--apps", "sssp,cc",
                    "--lanes", "3",
                    "--strategies", "uvm",
                    "--output", str(report_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "sssp" in output and "cc" in output
        assert "bfs" not in output
        assert report_path.exists()
        import json

        report = json.loads(report_path.read_text())
        streaming = [run for run in report["runs"] if run["mode"] == "streaming"]
        assert streaming and streaming[0]["num_lanes"] == 3
        # --strategies restricts the streaming lanes too.
        assert all(lane["strategy"] == "uvm" for lane in streaming[0]["lanes"])
        assert report["summary"]["all_values_match"]
        assert "relax_backend" in report

    def test_unknown_app_rejected(self, tmp_path, capsys):
        assert (
            main(
                [
                    "bench-traversal",
                    "--vertices", "400",
                    "--edges", "2000",
                    "--apps", "sspp",
                    "--output", str(tmp_path / "x.json"),
                ]
            )
            == 2
        )
        assert "bench-traversal failed" in capsys.readouterr().err
