"""Tests for the PCIe link model."""

import pytest

from repro.config import DRAMConfig, PCIE3_X16, PCIE4_X16
from repro.errors import SimulationError
from repro.memsim.coalescer import RequestHistogram
from repro.memsim.interconnect import PCIeLink


@pytest.fixture
def link():
    return PCIeLink(PCIE3_X16, DRAMConfig())


class TestRequestStreams:
    def test_empty_stream_takes_no_time(self, link):
        result = link.transfer_requests(RequestHistogram())
        assert result.link_seconds == 0.0
        assert result.payload_bytes == 0

    def test_128b_stream_achieves_memcpy_class_bandwidth(self, link):
        histogram = RequestHistogram.single(128, 1_000_000)
        result = link.transfer_requests(histogram)
        assert result.achieved_payload_gbps == pytest.approx(12.3, abs=0.5)

    def test_32b_stream_is_latency_limited(self, link):
        histogram = RequestHistogram.single(32, 1_000_000)
        result = link.transfer_requests(histogram)
        # The paper's strided pattern lands around 4.7-5.5 GB/s.
        assert 4.0 < result.achieved_payload_gbps < 6.5

    def test_larger_requests_always_help(self, link):
        bandwidths = []
        for size in (32, 64, 96, 128):
            histogram = RequestHistogram.single(size, 100_000)
            bandwidths.append(link.transfer_requests(histogram).achieved_payload_gbps)
        assert bandwidths == sorted(bandwidths)

    def test_wire_bytes_include_tlp_headers(self, link):
        histogram = RequestHistogram.single(128, 10)
        result = link.transfer_requests(histogram)
        assert result.wire_bytes == 10 * (128 + PCIE3_X16.tlp_header_bytes)

    def test_dram_bytes_round_up_to_64(self, link):
        histogram = RequestHistogram.single(32, 10)
        result = link.transfer_requests(histogram)
        assert result.dram_bytes == 10 * 64

    def test_mixed_stream(self, link):
        histogram = RequestHistogram({32: 100, 64: 0, 96: 100, 128: 100})
        result = link.transfer_requests(histogram)
        assert result.num_requests == 300
        assert result.payload_bytes == 100 * 32 + 100 * 96 + 100 * 128

    def test_pcie4_doubles_128b_bandwidth(self):
        gen3 = PCIeLink(PCIE3_X16).transfer_requests(RequestHistogram.single(128, 100_000))
        gen4 = PCIeLink(PCIE4_X16).transfer_requests(RequestHistogram.single(128, 100_000))
        assert gen4.achieved_payload_gbps == pytest.approx(
            2 * gen3.achieved_payload_gbps, rel=0.05
        )


class TestBlockTransfers:
    def test_zero_bytes(self, link):
        result = link.transfer_block(0)
        assert result.link_seconds == 0.0

    def test_negative_rejected(self, link):
        with pytest.raises(SimulationError):
            link.transfer_block(-1)

    def test_peak_bandwidth_matches_memcpy(self, link):
        result = link.transfer_block(1_000_000_000)
        assert result.achieved_payload_gbps == pytest.approx(link.memcpy_peak_gbps, rel=0.01)

    def test_block_transfer_faster_than_32b_stream(self, link):
        num_bytes = 32 * 100_000
        stream = link.transfer_requests(RequestHistogram.single(32, 100_000))
        block = link.transfer_block(num_bytes)
        assert block.link_seconds < stream.link_seconds


class TestReferenceFigures:
    def test_memcpy_peak(self, link):
        assert link.memcpy_peak_gbps == pytest.approx(12.3, abs=0.5)

    def test_steady_state_uses_config(self, link):
        assert link.steady_state_gbps(128) == pytest.approx(
            PCIE3_X16.effective_read_gbps(128)
        )
