"""The shared REPRO_* environment contract (repro.envflags)."""

from __future__ import annotations

import pytest

from repro.envflags import env_choice, env_flag, env_str
from repro.errors import ConfigurationError


class TestEnvFlag:
    @pytest.mark.parametrize("raw", ["1", "true", "on", "yes", "True", " ON "])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TESTFLAG", raw)
        assert env_flag("REPRO_TESTFLAG", default=False) is True

    @pytest.mark.parametrize("raw", ["0", "false", "off", "no", "False", " OFF "])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TESTFLAG", raw)
        assert env_flag("REPRO_TESTFLAG", default=True) is False

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TESTFLAG", raising=False)
        assert env_flag("REPRO_TESTFLAG", default=True) is True
        assert env_flag("REPRO_TESTFLAG", default=False) is False

    def test_empty_returns_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TESTFLAG", "   ")
        assert env_flag("REPRO_TESTFLAG", default=True) is True

    def test_unknown_value_degrades_to_default(self, monkeypatch):
        # Operational kill switches must not flip modes on a typo.
        monkeypatch.setenv("REPRO_TESTFLAG", "maybe")
        assert env_flag("REPRO_TESTFLAG", default=True) is True
        assert env_flag("REPRO_TESTFLAG", default=False) is False


class TestEnvStr:
    def test_strips_whitespace(self, monkeypatch):
        monkeypatch.setenv("REPRO_TESTSTR", "  value  ")
        assert env_str("REPRO_TESTSTR") == "value"

    def test_unset_and_empty_return_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TESTSTR", raising=False)
        assert env_str("REPRO_TESTSTR") is None
        assert env_str("REPRO_TESTSTR", default="x") == "x"
        monkeypatch.setenv("REPRO_TESTSTR", "   ")
        assert env_str("REPRO_TESTSTR") is None


class TestEnvChoice:
    def test_valid_choice_normalized(self, monkeypatch):
        monkeypatch.setenv("REPRO_TESTCHOICE", "  ASAN ")
        assert env_choice("REPRO_TESTCHOICE", ("asan", "ubsan")) == "asan"

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TESTCHOICE", raising=False)
        assert env_choice("REPRO_TESTCHOICE", ("asan", "ubsan")) is None
        assert env_choice("REPRO_TESTCHOICE", ("asan",), default="asan") == "asan"

    def test_unknown_value_raises(self, monkeypatch):
        # Unlike flags, a typo'd mode request must fail loudly: silently
        # running the unsanitized build would defeat the point of asking.
        monkeypatch.setenv("REPRO_TESTCHOICE", "asam")
        with pytest.raises(ConfigurationError, match="asam"):
            env_choice("REPRO_TESTCHOICE", ("asan", "ubsan"))
