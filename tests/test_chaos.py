"""Chaos smoke: seeded fault plans against a full service, end to end.

These tests drive the drain path deterministically (jobs are enqueued first,
then drained on the test thread) so fused groups form reliably, and assert
the resilience invariants the PR promises: every request reaches a terminal
state, a poisoned lane fails alone while its siblings' results stay
bit-identical, a tripped native breaker degrades to bit-identical numpy
results, and the drained trace passes ``repro.obs.check``.
"""

import numpy as np
import pytest

from repro.config import ServiceConfig
from repro.errors import PermanentFaultError
from repro.obs.check import check_trace_lines
from repro.service import FaultPlan, Service, TraversalRequest
from repro.service import faults
from repro.service.jobs import JobStatus
from repro.graph.generators import uniform_random_graph
from repro.traversal import _native
from repro.traversal.api import run
from repro.types import AccessStrategy, Application

import json


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()
    _native.reset_probe()


def make_graph(name="chaos", vertices=400, edges=2400, seed=5):
    return uniform_random_graph(vertices, edges, seed=seed, name=name)


def enqueue_without_draining(service, requests):
    """Submit requests while stubbing worker dispatch, for deterministic
    batching: everything queues first, the test thread drains afterwards."""
    original = service._pool.submit
    service._pool.submit = lambda fn, *a, **k: None
    try:
        return [service.submit(request) for request in requests]
    finally:
        service._pool.submit = original


def drain_all(service, max_drains=100):
    for _ in range(max_drains):
        if service._queue.pending_count() == 0:
            return
        service._drain_one_batch()
    raise AssertionError("queue did not drain")


def clean_values(graph, application, source):
    return run(application, graph, source=source).values


class TestPoisonedLaneIsolation:
    def test_poisoned_sssp_lane_fails_alone_with_bit_identical_siblings(self):
        plan = FaultPlan.from_spec("seed=11;worker.task:permanent:source=13")
        config = ServiceConfig(fault_plan=plan, trace_enabled=True, trace_sample=1.0)
        graph = make_graph()
        with Service(config=config) as service:
            service.registry.register_graph(graph)
            requests = [
                TraversalRequest(
                    graph="chaos", application=Application.SSSP, source=s
                )
                for s in range(16)
            ]
            jobs = enqueue_without_draining(service, requests)
            drain_all(service)

            assert all(job.done for job in jobs), "every request must be terminal"
            poisoned = [job for job in jobs if job.request.source == 13]
            assert len(poisoned) == 1
            assert poisoned[0].status is JobStatus.FAILED
            assert isinstance(poisoned[0].error, PermanentFaultError)
            for job in jobs:
                if job is poisoned[0]:
                    continue
                assert job.status is JobStatus.DONE
                expected = clean_values(graph, Application.SSSP, job.request.source)
                assert np.array_equal(job.result.values, expected)

            stats = service.stats()
            assert stats.isolations >= 1
            assert stats.failed == 1 and stats.completed == 15

    def test_poisoned_streaming_lane_fails_alone(self):
        # CC jobs carry no source, so the poison matches on tenant; two
        # strategies make two lanes of one fused streaming pass.
        plan = FaultPlan.from_spec("seed=3;worker.task:permanent:tenant=poison")
        config = ServiceConfig(fault_plan=plan)
        graph = make_graph()
        with Service(config=config) as service:
            service.registry.register_graph(graph)
            requests = [
                TraversalRequest(
                    graph="chaos", application=Application.CC,
                    strategy="merged_aligned", tenant="poison",
                ),
                TraversalRequest(
                    graph="chaos", application=Application.CC,
                    strategy="uvm", tenant="ok",
                ),
            ]
            jobs = enqueue_without_draining(service, requests)
            drain_all(service)

            assert all(job.done for job in jobs)
            assert jobs[0].status is JobStatus.FAILED
            assert isinstance(jobs[0].error, PermanentFaultError)
            assert jobs[1].status is JobStatus.DONE
            expected = run(
                Application.CC, graph, strategy=AccessStrategy.UVM
            ).values
            assert np.array_equal(jobs[1].result.values, expected)
            assert service.stats().isolations >= 1


class TestBreakerDegradation:
    @pytest.mark.skipif(
        not _native.available(), reason="native relax kernel unavailable"
    )
    def test_forced_native_failure_degrades_bit_identically(self):
        plan = FaultPlan.from_spec("seed=2;native.invoke:permanent")
        config = ServiceConfig(fault_plan=plan, breaker_threshold=1)
        graph = make_graph()
        with Service(config=config) as service:
            service.registry.register_graph(graph)
            requests = [
                TraversalRequest(
                    graph="chaos", application=Application.SSSP, source=s
                )
                for s in range(8)
            ]
            jobs = enqueue_without_draining(service, requests)
            drain_all(service)

            stats = service.stats()
            assert stats.breaker_state == "open"
            assert stats.degraded >= 1
            assert stats.failed == 0 and stats.completed == 8
            for job in jobs:
                expected = clean_values(graph, Application.SSSP, job.request.source)
                assert np.array_equal(job.result.values, expected)

            # The breaker state is exported through the Prometheus surface.
            rendered = service.collect_metrics().render_prometheus()
            assert "repro_native_breaker_state 2" in rendered
            assert "repro_native_degraded_total" in rendered

    @pytest.mark.skipif(
        not _native.available(), reason="native relax kernel unavailable"
    )
    def test_open_breaker_keeps_serving_without_native(self):
        plan = FaultPlan.from_spec("seed=2;native.invoke:permanent")
        config = ServiceConfig(fault_plan=plan, breaker_threshold=1)
        graph = make_graph()
        with Service(config=config) as service:
            service.registry.register_graph(graph)
            first = enqueue_without_draining(
                service,
                [
                    TraversalRequest(
                        graph="chaos", application=Application.SSSP, source=s
                    )
                    for s in range(4)
                ],
            )
            drain_all(service)
            assert service.stats().breaker_state == "open"
            # Subsequent drains route straight to numpy: no new native
            # attempt, still-correct results.
            second = enqueue_without_draining(
                service,
                [
                    TraversalRequest(
                        graph="chaos", application=Application.SSSP, source=s
                    )
                    for s in range(4, 8)
                ],
            )
            drain_all(service)
            for job in first + second:
                assert job.status is JobStatus.DONE
            assert service.stats().degraded >= 2


class TestChaosPlanEndToEnd:
    def test_mixed_chaos_plan_all_terminal_and_trace_checks(self):
        spec = (
            "seed=17;"
            "registry.load:transient:n=1:limit=1;"
            "worker.task:permanent:source=7;"
            "cache.put:transient:n=3:limit=2"
        )
        config = ServiceConfig(
            fault_plan=spec, trace_enabled=True, trace_sample=1.0
        )
        graph = make_graph()
        with Service(config=config) as service:
            service.registry.register_graph(graph)
            requests = [
                TraversalRequest(
                    graph="chaos", application=Application.BFS, source=s
                )
                for s in range(12)
            ]
            jobs = enqueue_without_draining(service, requests)
            drain_all(service)

            assert all(job.done for job in jobs)
            failed = [job for job in jobs if job.status is JobStatus.FAILED]
            assert [job.request.source for job in failed] == [7]
            for job in jobs:
                if job.status is JobStatus.DONE:
                    expected = clean_values(
                        graph, Application.BFS, job.request.source
                    )
                    assert np.array_equal(job.result.values, expected)

            stats = service.stats()
            assert stats.retries >= 1
            assert stats.faults_injected >= 2
            assert stats.cache_errors >= 1

            # The drained trace — retry spans included — passes the CI gate.
            lines = [
                json.dumps(span, sort_keys=True)
                for span in service.drain_traces()
            ]
            checked, errors = check_trace_lines(lines)
            assert errors == []
            assert checked >= len(jobs)

    def test_env_spec_arms_the_default_config(self, monkeypatch):
        monkeypatch.setenv(
            faults.ENV_SPEC, "seed=4;registry.load:transient:n=1:limit=1"
        )
        with Service() as service:
            service.registry.register_graph(make_graph())
            job = service.submit(
                TraversalRequest(
                    graph="chaos", application=Application.BFS, source=0
                )
            )
            assert service.result(job, timeout=30).values is not None
            stats = service.stats()
            assert stats.retries == 1 and stats.faults_injected == 1

    def test_stats_prom_exposition_carries_resilience_series(self):
        config = ServiceConfig(
            fault_plan="registry.load:transient:n=1:limit=1"
        )
        with Service(config=config) as service:
            service.registry.register_graph(make_graph())
            job = service.submit(
                TraversalRequest(
                    graph="chaos", application=Application.BFS, source=0
                )
            )
            service.result(job, timeout=30)
            rendered = service.collect_metrics().render_prometheus()
            assert 'repro_retries_total{site="registry"} 1' in rendered
            assert 'repro_faults_injected_total{site="registry.load"} 1' in rendered
            assert "repro_native_breaker_state 0" in rendered
