"""Tests for the minimal SIMT execution model."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.kernel import KernelLaunch, KernelStats
from repro.gpu.simt import coalesce_thread_grid
from repro.gpu.warp import WARP_SIZE, lanes_for_threads, num_warps, warp_of_threads
from repro.memsim.coalescer import coalesce_warp_addresses


class TestWarpHelpers:
    def test_warp_size_is_32(self):
        assert WARP_SIZE == 32

    def test_num_warps_rounds_up(self):
        assert num_warps(0) == 0
        assert num_warps(1) == 1
        assert num_warps(32) == 1
        assert num_warps(33) == 2

    def test_lanes(self):
        lanes = lanes_for_threads(70)
        assert lanes[0] == 0
        assert lanes[31] == 31
        assert lanes[32] == 0
        assert lanes[69] == 5

    def test_warp_of_threads(self):
        warps = warp_of_threads(70)
        assert warps[31] == 0
        assert warps[32] == 1

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            num_warps(-1)
        with pytest.raises(SimulationError):
            lanes_for_threads(-1)
        with pytest.raises(SimulationError):
            warp_of_threads(-1)


class TestKernelStats:
    def test_launch_properties(self):
        launch = KernelLaunch(name="bfs", num_threads=100, iteration=2)
        assert launch.num_warps == 4

    def test_stats_accumulate(self):
        stats = KernelStats()
        stats.record(KernelLaunch("a", 64))
        stats.record(KernelLaunch("b", 10))
        assert stats.num_launches == 2
        assert stats.total_threads == 74
        assert stats.total_warps == 3
        stats.reset()
        assert stats.num_launches == 0


class TestThreadGridCoalescing:
    def test_single_warp_matches_warp_coalescer(self):
        addresses = np.arange(32) * 8
        grid = coalesce_thread_grid(addresses, access_bytes=8)
        warp = coalesce_warp_addresses(addresses, access_bytes=8)
        assert grid == warp

    def test_multiple_warps_are_independent(self):
        # Two warps each reading one full aligned 128B line (4-byte elements).
        addresses = np.concatenate([np.arange(32) * 4, 4096 + np.arange(32) * 4])
        grid = coalesce_thread_grid(addresses, access_bytes=4)
        assert grid.counts[128] == 2

    def test_partial_last_warp(self):
        addresses = np.arange(40) * 4
        grid = coalesce_thread_grid(addresses, access_bytes=4)
        # First warp: one 128B line; last 8 threads: one 32B sector.
        assert grid.counts[128] == 1
        assert grid.counts[32] == 1

    def test_active_mask(self):
        addresses = np.arange(64) * 4
        mask = np.zeros(64, dtype=bool)
        mask[:32] = True
        grid = coalesce_thread_grid(addresses, access_bytes=4, active_mask=mask)
        assert grid.counts[128] == 1
        assert grid.total_requests == 1
