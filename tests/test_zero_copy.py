"""Tests for the zero-copy access path."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.memsim.address_space import AddressSpace
from repro.memsim.gpu_memory import DeviceMemory
from repro.memsim.monitor import PCIeTrafficMonitor
from repro.memsim.zero_copy import ZeroCopyRegion
from repro.types import MemorySpace


def make_region(num_elements=10_000, element_bytes=8, misalign=0, monitor=None):
    device = DeviceMemory(capacity_bytes=1_000_000)
    space = AddressSpace(device)
    allocation = space.allocate(
        "edges",
        num_elements * element_bytes,
        MemorySpace.HOST_PINNED,
        element_bytes=element_bytes,
        misalign_bytes=misalign,
    )
    return ZeroCopyRegion(allocation, monitor=monitor)


class TestStridedAccess:
    def test_one_32b_request_per_sector(self):
        region = make_region()
        histogram = region.access_strided(np.array([0]), np.array([16]))
        # 16 eight-byte elements = 128 bytes = 4 sectors.
        assert histogram.counts == {32: 4, 64: 0, 96: 0, 128: 0}

    def test_hit_rate_one_means_no_refetch(self):
        region = make_region()
        histogram = region.access_strided(
            np.array([0]), np.array([1024]), intra_sector_hit_rate=1.0
        )
        assert histogram.counts[32] == 256

    def test_cache_thrashing_adds_refetches(self):
        region = make_region()
        clean = region.access_strided(np.array([0]), np.array([1024]))
        thrashed = make_region().access_strided(
            np.array([0]), np.array([1024]), intra_sector_hit_rate=0.0
        )
        # With a zero hit rate every element access issues its own request.
        assert thrashed.counts[32] == 1024
        assert thrashed.counts[32] > clean.counts[32]

    def test_invalid_hit_rate_rejected(self):
        region = make_region()
        with pytest.raises(SimulationError):
            region.access_strided(np.array([0]), np.array([10]), intra_sector_hit_rate=1.5)

    def test_out_of_range_access_rejected(self):
        region = make_region(num_elements=10)
        with pytest.raises(SimulationError):
            region.access_strided(np.array([0]), np.array([11]))
        with pytest.raises(SimulationError):
            region.access_strided(np.array([-1]), np.array([5]))


class TestMergedAccess:
    def test_aligned_list_generates_full_lines(self):
        region = make_region()
        histogram = region.access_merged(np.array([0]), np.array([64]), aligned=True)
        # 64 eight-byte elements = 512 bytes = 4 full cache lines.
        assert histogram.counts == {32: 0, 64: 0, 96: 0, 128: 4}

    def test_unaligned_start_splits_requests_without_alignment(self):
        region = make_region()
        histogram = region.access_merged(np.array([4]), np.array([68]), aligned=False)
        assert histogram.counts[128] < 4
        assert histogram.total_requests > 4

    def test_alignment_optimization_restores_full_lines(self):
        region = make_region()
        unaligned = region.access_merged(np.array([4]), np.array([68]), aligned=False)
        aligned = make_region().access_merged(np.array([4]), np.array([68]), aligned=True)
        assert aligned.counts[128] >= unaligned.counts[128]
        assert aligned.total_requests <= unaligned.total_requests

    def test_merged_fewer_requests_than_strided(self, random_graph):
        starts = random_graph.offsets[:-1]
        ends = random_graph.offsets[1:]
        merged_region = make_region(num_elements=random_graph.num_edges)
        strided_region = make_region(num_elements=random_graph.num_edges)
        merged = merged_region.access_merged(starts, ends, aligned=False)
        strided = strided_region.access_strided(starts, ends)
        assert merged.total_requests <= strided.total_requests

    def test_misaligned_allocation_base_affects_requests(self):
        aligned_region = make_region(element_bytes=4)
        misaligned_region = make_region(element_bytes=4, misalign=32)
        aligned = aligned_region.access_merged(np.array([0]), np.array([32]), aligned=False)
        misaligned = misaligned_region.access_merged(
            np.array([0]), np.array([32]), aligned=False
        )
        assert aligned.counts[128] == 1
        assert misaligned.counts[128] == 0
        assert misaligned.counts[96] == 1
        assert misaligned.counts[32] == 1


class TestWarpAccess:
    def test_exact_warp_instruction(self):
        region = make_region(element_bytes=4)
        histogram = region.access_warp_addresses(np.arange(32))
        assert histogram.counts[128] == 1

    def test_active_mask(self):
        region = make_region(element_bytes=4)
        mask = np.zeros(32, dtype=bool)
        mask[:8] = True
        histogram = region.access_warp_addresses(np.arange(32), active_mask=mask)
        assert histogram.counts[32] == 1


class TestMonitorIntegration:
    def test_all_accesses_are_recorded(self):
        monitor = PCIeTrafficMonitor()
        region = make_region(monitor=monitor)
        region.access_merged(np.array([0]), np.array([64]), aligned=True)
        region.access_strided(np.array([0]), np.array([16]))
        assert monitor.total_requests == 4 + 4
        assert monitor.zero_copy_bytes == 4 * 128 + 4 * 32
