"""Tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph


class TestConstructionAndValidation:
    def test_figure1_graph(self, paper_example_graph):
        # The CSR of Figure 1: offsets [0, 2, 6, 9, 10, 12].
        graph = paper_example_graph
        assert graph.num_vertices == 5
        assert graph.num_edges == 12
        assert graph.offsets.tolist() == [0, 2, 6, 9, 10, 12]
        assert graph.neighbors(1).tolist() == [0, 2, 3, 4]

    def test_empty_graph(self):
        graph = CSRGraph(offsets=np.array([0]), edges=np.array([], dtype=np.int64))
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert graph.average_degree() == 0.0
        assert graph.max_degree() == 0

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([1, 2]), edges=np.array([0]))

    def test_offsets_must_match_edge_count(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([0, 3]), edges=np.array([0, 0]))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([0, 2, 1, 3]), edges=np.array([0, 1, 2]))

    def test_edges_must_be_valid_vertices(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(offsets=np.array([0, 1]), edges=np.array([5]))

    def test_weights_must_match_edges(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(
                offsets=np.array([0, 2]),
                edges=np.array([0, 0]),
                weights=np.array([1.0]),
            )

    def test_element_bytes_must_be_4_or_8(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(
                offsets=np.array([0, 1]), edges=np.array([0]), element_bytes=16
            )


class TestDegreesAndNeighbors:
    def test_degrees(self, paper_example_graph):
        assert paper_example_graph.degrees().tolist() == [2, 4, 3, 1, 2]
        assert paper_example_graph.degree(1) == 4
        assert paper_example_graph.max_degree() == 4
        assert paper_example_graph.average_degree() == pytest.approx(12 / 5)

    def test_neighbor_range(self, paper_example_graph):
        assert paper_example_graph.neighbor_range(2) == (6, 9)

    def test_invalid_vertex_rejected(self, paper_example_graph):
        with pytest.raises(GraphFormatError):
            paper_example_graph.degree(99)
        with pytest.raises(GraphFormatError):
            paper_example_graph.neighbors(-1)

    def test_edge_sources(self, paper_example_graph):
        sources = paper_example_graph.edge_sources()
        assert sources.tolist() == [0, 0, 1, 1, 1, 1, 2, 2, 2, 3, 4, 4]

    def test_iter_edges(self, path_graph):
        edges = set(path_graph.iter_edges())
        assert (0, 1) in edges and (1, 0) in edges
        assert len(edges) == path_graph.num_edges

    def test_neighbor_weights(self, random_graph):
        weights = random_graph.neighbor_weights(0)
        assert weights.size == random_graph.degree(0)

    def test_neighbor_weights_requires_weights(self, path_graph):
        with pytest.raises(GraphFormatError):
            path_graph.neighbor_weights(0)


class TestFootprint:
    def test_byte_sizes_with_8_byte_elements(self, paper_example_graph):
        graph = paper_example_graph
        assert graph.edge_list_bytes == 12 * 8
        assert graph.vertex_list_bytes == 6 * 8
        assert graph.weight_list_bytes == 0
        assert graph.total_bytes == 12 * 8 + 6 * 8

    def test_with_element_bytes(self, paper_example_graph):
        graph4 = paper_example_graph.with_element_bytes(4)
        assert graph4.edge_list_bytes == 12 * 4
        assert graph4.num_edges == paper_example_graph.num_edges
        assert graph4.edges.tolist() == paper_example_graph.edges.tolist()

    def test_weight_bytes_are_4_per_edge(self, random_graph):
        assert random_graph.weight_list_bytes == random_graph.num_edges * 4


class TestDerivedGraphs:
    def test_with_and_without_weights(self, path_graph):
        weights = np.arange(path_graph.num_edges, dtype=np.float32)
        weighted = path_graph.with_weights(weights)
        assert weighted.has_weights
        assert not weighted.without_weights().has_weights

    def test_renamed(self, path_graph):
        assert path_graph.renamed("other").name == "other"

    def test_reverse_of_undirected_is_same_edge_set(self, paper_example_graph):
        reversed_graph = paper_example_graph.reverse()
        original = set(paper_example_graph.iter_edges())
        flipped = {(d, s) for s, d in reversed_graph.iter_edges()}
        assert original == flipped

    def test_reverse_directed(self):
        from repro.graph.builder import from_edge_array

        graph = from_edge_array(np.array([0, 0, 1]), np.array([1, 2, 2]), directed=True)
        reversed_graph = graph.reverse()
        assert set(reversed_graph.iter_edges()) == {(1, 0), (2, 0), (2, 1)}

    def test_is_symmetric(self, paper_example_graph):
        assert paper_example_graph.is_symmetric()

    def test_is_not_symmetric(self):
        from repro.graph.builder import from_edge_array

        graph = from_edge_array(np.array([0]), np.array([1]), directed=True)
        assert not graph.is_symmetric()
