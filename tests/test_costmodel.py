"""Tests for the online per-batch-family cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.service.costmodel import (
    BOOTSTRAP_SECONDS_PER_EDGE,
    BOOTSTRAP_SECONDS_PER_VERTEX,
    DEFAULT_BOOTSTRAP_SECONDS,
    CostModel,
)

FAMILY = ("g", "bfs", "merged_aligned", "default")


class TestBootstrap:
    def test_unknown_family_uses_flat_default(self):
        model = CostModel()
        assert model.estimate_job(FAMILY) == pytest.approx(DEFAULT_BOOTSTRAP_SECONDS)
        assert model.estimate_group(FAMILY, 4) == pytest.approx(
            4 * DEFAULT_BOOTSTRAP_SECONDS
        )

    def test_graph_size_lookup_scales_bootstrap(self):
        model = CostModel(graph_size_lookup=lambda name: (100, 5000))
        expected = (
            5000 * BOOTSTRAP_SECONDS_PER_EDGE + 100 * BOOTSTRAP_SECONDS_PER_VERTEX
        )
        assert model.estimate_job(FAMILY) == pytest.approx(expected)
        # a bigger graph costs proportionally more before any samples exist
        big = CostModel(graph_size_lookup=lambda name: (1000, 50000))
        assert big.estimate_job(FAMILY) == pytest.approx(10 * expected)

    def test_lookup_miss_falls_back_to_default(self):
        model = CostModel(graph_size_lookup=lambda name: None)
        assert model.estimate_job(FAMILY) == pytest.approx(DEFAULT_BOOTSTRAP_SECONDS)

    def test_estimate_never_calls_lookup_once_sampled(self):
        calls = []

        def lookup(name):
            calls.append(name)
            return (10, 100)

        model = CostModel(graph_size_lookup=lookup)
        model.observe(FAMILY, 2, 0.010)
        calls.clear()
        model.estimate_group(FAMILY, 2)
        assert calls == []


class TestLearning:
    def test_first_observation_replaces_bootstrap(self):
        model = CostModel(alpha=0.5)
        model.observe(FAMILY, 4, 0.020)
        # group EWMA seeded at 20ms, per-job at 5ms
        assert model.estimate_group(FAMILY, 4) == pytest.approx(0.020)
        assert model.estimate_group(FAMILY, 1) == pytest.approx(0.020)  # sweep floor
        assert model.estimate_group(FAMILY, 8) == pytest.approx(0.040)  # marginal

    def test_ewma_update_math(self):
        model = CostModel(alpha=0.5)
        model.observe(FAMILY, 1, 0.010)
        model.observe(FAMILY, 1, 0.030)
        # 0.010 + 0.5 * (0.030 - 0.010) = 0.020
        assert model.estimate_job(FAMILY) == pytest.approx(0.020)

    def test_convergence_to_stationary_cost(self):
        model = CostModel(alpha=0.25)
        for _ in range(30):
            model.observe(FAMILY, 8, 0.080)
        assert model.estimate_group(FAMILY, 8) == pytest.approx(0.080, rel=1e-6)
        # a narrower group still pays the sweep floor; a wider one scales
        # with the marginal per-job cost
        assert model.estimate_job(FAMILY) == pytest.approx(0.080, rel=1e-6)
        assert model.estimate_group(FAMILY, 16) == pytest.approx(0.160, rel=1e-6)
        assert model.family_samples(FAMILY) == 30

    def test_families_are_independent(self):
        other = ("h", "sssp", "uvm", "default")
        model = CostModel()
        model.observe(FAMILY, 1, 0.001)
        model.observe(other, 1, 1.0)
        assert model.estimate_job(FAMILY) == pytest.approx(0.001)
        assert model.estimate_job(other) == pytest.approx(1.0)
        assert model.stats().families == 2

    def test_defensive_rejects_garbage_observations(self):
        model = CostModel()
        model.observe(FAMILY, 0, 1.0)
        model.observe(FAMILY, 4, -1.0)
        model.observe(FAMILY, 4, float("nan"))
        assert model.family_samples(FAMILY) == 0
        assert model.stats().samples == 0


class TestAccuracyTracking:
    def test_error_scored_against_prior_estimate(self):
        model = CostModel(graph_size_lookup=lambda name: None)
        model.observe(FAMILY, 1, DEFAULT_BOOTSTRAP_SECONDS + 0.005)
        stats = model.stats()
        assert stats.samples == 1
        assert stats.mean_abs_error_seconds == pytest.approx(0.005)

    def test_error_shrinks_as_model_converges(self):
        model = CostModel(alpha=0.5)
        model.observe(FAMILY, 1, 0.050)
        early = model.stats().mean_abs_error_seconds
        for _ in range(40):
            model.observe(FAMILY, 1, 0.050)
        late = model.stats().mean_abs_error_seconds
        assert late < early  # the running mean is dragged down by good predictions

    def test_describe_mentions_families_and_error(self):
        model = CostModel()
        model.observe(FAMILY, 1, 0.010)
        text = model.stats().describe()
        assert "1 families" in text and "ms" in text


class TestValidation:
    @pytest.mark.parametrize("alpha", [0.0, -0.5, 1.5])
    def test_bad_alpha_rejected(self, alpha):
        with pytest.raises(ConfigurationError):
            CostModel(alpha=alpha)
