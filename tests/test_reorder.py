"""Tests for vertex reordering (the HALO substrate)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.reorder import apply_permutation, bfs_order, degree_order, halo_order
from repro.traversal.bfs import bfs_levels


def is_permutation(array, n):
    return sorted(array.tolist()) == list(range(n))


class TestOrders:
    def test_degree_order_is_permutation(self, random_graph):
        order = degree_order(random_graph)
        assert is_permutation(order, random_graph.num_vertices)

    def test_degree_order_puts_hubs_first(self, star_graph):
        order = degree_order(star_graph)
        # Vertex 0 (the hub) must receive the smallest new ID.
        assert order[0] == 0

    def test_bfs_order_is_permutation(self, random_graph):
        order = bfs_order(random_graph, source=0)
        assert is_permutation(order, random_graph.num_vertices)

    def test_bfs_order_assigns_source_zero(self, path_graph):
        order = bfs_order(path_graph, source=3)
        assert order[3] == 0

    def test_bfs_order_handles_unreachable(self, disconnected_graph):
        order = bfs_order(disconnected_graph, source=0)
        assert is_permutation(order, disconnected_graph.num_vertices)

    def test_halo_order_is_permutation(self, random_graph):
        order = halo_order(random_graph)
        assert is_permutation(order, random_graph.num_vertices)

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        empty = CSRGraph(offsets=np.array([0]), edges=np.array([], dtype=np.int64))
        assert bfs_order(empty).size == 0


class TestApplyPermutation:
    def test_identity(self, paper_example_graph):
        identity = np.arange(paper_example_graph.num_vertices)
        same = apply_permutation(paper_example_graph, identity)
        assert set(same.iter_edges()) == set(paper_example_graph.iter_edges())

    def test_relabels_edges(self, path_graph):
        # Reverse the path: vertex v -> 5 - v.
        permutation = np.arange(path_graph.num_vertices)[::-1].copy()
        reordered = apply_permutation(path_graph, permutation)
        expected = {(5 - s, 5 - d) for s, d in path_graph.iter_edges()}
        assert set(reordered.iter_edges()) == expected

    def test_preserves_degree_multiset(self, random_graph):
        permutation = degree_order(random_graph)
        reordered = apply_permutation(random_graph, permutation)
        assert sorted(reordered.degrees().tolist()) == sorted(random_graph.degrees().tolist())

    def test_preserves_bfs_level_multiset(self, random_graph):
        """Reordering must not change the traversal result (graph isomorphism)."""
        permutation = halo_order(random_graph)
        reordered = apply_permutation(random_graph, permutation)
        source = 0
        original_levels = bfs_levels(random_graph, source)
        reordered_levels = bfs_levels(reordered, int(permutation[source]))
        # Level of vertex v in the original equals level of permutation[v] in the
        # reordered graph.
        assert np.array_equal(original_levels, reordered_levels[permutation])

    def test_keeps_weights_with_their_edges(self, random_graph):
        permutation = degree_order(random_graph)
        reordered = apply_permutation(random_graph, permutation)
        assert reordered.has_weights
        assert np.isclose(sorted(reordered.weights), sorted(random_graph.weights)).all()

    def test_invalid_permutation_rejected(self, path_graph):
        with pytest.raises(GraphFormatError):
            apply_permutation(path_graph, np.zeros(path_graph.num_vertices, dtype=np.int64))
        with pytest.raises(GraphFormatError):
            apply_permutation(path_graph, np.array([0, 1]))
