"""Lock-order race detection (repro.analysis.lockorder)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis import lockorder
from repro.analysis.lockorder import (
    TrackedLock,
    cycles,
    format_report,
    tracked_lock,
    tracked_rlock,
)


@pytest.fixture(autouse=True)
def _clean_detector():
    """Every test starts and ends with the detector disarmed and empty."""
    lockorder.install(None)
    lockorder.reset()
    yield
    lockorder.install(None)
    lockorder.reset()


def _run_threads(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30)


class TestDisabledPath:
    def test_disabled_factories_return_plain_stdlib_locks(self):
        lockorder.install(False)
        lock = tracked_lock("test.plain")
        rlock = tracked_rlock("test.plain_r")
        # Identity, not emulation: the zero-cost path hands out the exact
        # stdlib primitives, so there is no wrapper overhead to measure.
        assert type(lock) is type(threading.Lock())
        assert type(rlock) is type(threading.RLock())

    def test_env_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOCKCHECK", raising=False)
        assert not lockorder.enabled()
        assert type(tracked_lock("test.default")) is type(threading.Lock())

    def test_env_arms_the_detector(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOCKCHECK", "1")
        assert lockorder.enabled()
        assert isinstance(tracked_lock("test.armed"), TrackedLock)


class TestTrackedLock:
    def test_context_manager_and_locked(self):
        lockorder.install(True)
        lock = tracked_lock("test.cm")
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_nonblocking_acquire(self):
        lockorder.install(True)
        lock = tracked_lock("test.nb")
        assert lock.acquire(blocking=False)
        try:
            assert not lock.acquire(blocking=False)
        finally:
            lock.release()

    def test_reentrant_rlock_records_no_self_cycle(self):
        lockorder.install(True)
        lock = tracked_rlock("test.reentrant")
        with lock:
            with lock:
                pass
        assert cycles() == []

    def test_two_instances_sharing_a_name_self_edge(self):
        # Two threads nesting two same-named instances in opposite order is a
        # real deadlock, so same-name nesting must report a cycle.
        lockorder.install(True)
        first = tracked_lock("test.shared_name")
        second = tracked_lock("test.shared_name")
        with first:
            with second:
                pass
        found = cycles()
        assert len(found) == 1
        assert found[0]["nodes"] == ["test.shared_name"]


class TestCycleDetection:
    def test_consistent_order_reports_no_cycle(self):
        lockorder.install(True)
        a = tracked_lock("test.order_a")
        b = tracked_lock("test.order_b")

        def forward():
            with a:
                with b:
                    pass

        _run_threads(forward, forward)
        assert cycles() == []

    def test_inverted_acquisition_reports_cycle_with_both_stacks(self):
        lockorder.install(True)
        a = tracked_lock("test.inv_a")
        b = tracked_lock("test.inv_b")

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        # Sequential threads: the *order* graph flags the inversion even
        # though this schedule never actually deadlocked.
        _run_threads(forward)
        _run_threads(backward)

        found = cycles()
        assert len(found) == 1
        assert set(found[0]["nodes"]) == {"test.inv_a", "test.inv_b"}
        for edge in found[0]["edges"]:
            # Both acquisition stacks are attached, pointing into this test.
            assert "test_lockorder" in edge["holder_stack"]
            assert "test_lockorder" in edge["acquire_stack"]
        report = format_report(found)
        assert "test.inv_a" in report and "test.inv_b" in report
        assert "held while acquiring" in report
        assert "holder acquired at:" in report

    def test_three_lock_rotation_cycle(self):
        lockorder.install(True)
        a = tracked_lock("test.rot_a")
        b = tracked_lock("test.rot_b")
        c = tracked_lock("test.rot_c")

        for outer, inner in ((a, b), (b, c), (c, a)):
            with outer:
                with inner:
                    pass

        found = cycles()
        assert len(found) == 1
        assert set(found[0]["nodes"]) == {"test.rot_a", "test.rot_b", "test.rot_c"}

    def test_reset_clears_the_graph(self):
        lockorder.install(True)
        a = tracked_lock("test.reset_a")
        b = tracked_lock("test.reset_b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert cycles()
        lockorder.reset()
        assert cycles() == []
        assert "no ordering cycles" in format_report()


class TestServiceSmoke:
    def test_serving_tier_observes_no_cycles(self, random_graph):
        """Drive the real service with tracking armed; the tree must be clean."""
        from repro.config import ServiceConfig
        from repro.service.registry import GraphRegistry
        from repro.service.requests import TraversalRequest
        from repro.service.service import Service

        lockorder.install(True)
        registry = GraphRegistry()
        registry.register_graph(random_graph)
        with Service(registry=registry, config=ServiceConfig(max_workers=2)) as service:
            jobs = [
                service.submit(TraversalRequest("bfs", random_graph.name, source=s))
                for s in range(3)
            ]
            jobs.append(
                service.submit(TraversalRequest("sssp", random_graph.name, source=0))
            )
            for job in jobs:
                service.result(job, timeout=30)
            service.collect_metrics().render_prometheus()
        assert cycles() == []
