"""Durable serving store: schema, write-through, warm restarts, recovery.

Covers the :mod:`repro.service.store` contract end to end: the
Paper-Scanner pragma discipline, fingerprint-validated result reads (stale
rows are detected, never served), quarantine of corrupt databases, chaos
degradation to in-memory-only serving with zero request failures, and the
cost-model persistence round-trip reproducing the same admission decisions
after a restart.
"""

import os
import sqlite3
import time

import pytest

from repro.config import ServiceConfig
from repro.errors import ConfigurationError, StoreError
from repro.graph.generators import uniform_random_graph
from repro.service import (
    STORE_STATE_CODES,
    Service,
    ServingStore,
    TraversalRequest,
    graph_fingerprint,
)
from repro.service import faults
from repro.service.costmodel import CostModel
from repro.service.store import (
    family_from_text,
    family_to_text,
    store_info,
    store_vacuum,
    store_verify,
)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def make_graph(name="durable", vertices=300, edges=2400, seed=5):
    return uniform_random_graph(vertices, edges, seed=seed, name=name)


def make_service(path, **knobs):
    config = ServiceConfig(
        max_workers=2, store_path=str(path), store_flush_interval=0.01, **knobs
    )
    return Service(config=config)


def wait_for(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestSchemaAndPragmas:
    def test_pragma_discipline(self, tmp_path):
        path = tmp_path / "store.db"
        with ServingStore(path) as store:
            assert store.state == "ok"
        conn = sqlite3.connect(path)
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        tables = {
            row[0]
            for row in conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert {"store_meta", "graph_catalog", "result_cache", "cost_history"} <= tables
        version = conn.execute(
            "SELECT value FROM store_meta WHERE key = 'schema_version'"
        ).fetchone()
        assert version == ("1",)
        conn.close()

    def test_timestamps_are_utc_iso8601(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with ServingStore(path) as store:
            store.record_load("durable", graph)
            store.flush()
        row = sqlite3.connect(path).execute(
            "SELECT first_loaded_at FROM graph_catalog"
        ).fetchone()
        assert row is not None and "+00:00" in row[0] and "T" in row[0]

    def test_booleans_stored_as_integers(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with ServingStore(path) as store:
            store.record_load("durable", graph)
            store.record_eviction("durable")
            store.flush()
        resident = sqlite3.connect(path).execute(
            "SELECT resident FROM graph_catalog"
        ).fetchone()[0]
        assert resident == 0 and isinstance(resident, int)


class TestFingerprint:
    def test_content_addressed_not_name_addressed(self):
        a = make_graph(name="a")
        b = make_graph(name="b")
        c = make_graph(seed=6)
        assert graph_fingerprint(a) == graph_fingerprint(b)
        assert graph_fingerprint(a) != graph_fingerprint(c)

    def test_family_text_round_trips_nested_tuples(self):
        family = ("bfs", ("g", 4), None, "merged_aligned")
        assert family_from_text(family_to_text(family)) == family


class TestResultRoundTrip:
    def test_write_through_then_lookup(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            job = service.submit(TraversalRequest("bfs", "durable", source=0))
            result = service.result(job, timeout=30)
            key = job.request.cache_key
            service.store.flush()
            restored = service.store.lookup(key)
            assert restored is not None
            assert (restored.values == result.values).all()

    def test_stale_fingerprint_is_a_miss_and_purged_on_load(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            job = service.submit(TraversalRequest("bfs", "durable", source=0))
            service.result(job, timeout=30)
            key = job.request.cache_key
            service.store.flush()

        # The graph's content changes under the same name: the catalog
        # fingerprint recorded at the next load no longer matches the row.
        changed = make_graph(seed=9)
        with make_service(path) as service:
            service.registry.register("durable", lambda: changed)
            assert service.store.lookup(key) is not None  # old catalog row
            service.registry.get("durable")  # records the new fingerprint
            service.store.flush()
            assert service.store.lookup(key) is None, "stale row must miss"
        rows = sqlite3.connect(path).execute(
            "SELECT COUNT(*) FROM result_cache"
        ).fetchone()[0]
        assert rows == 0, "record_load must purge mismatched rows"

    def test_streaming_source_none_round_trips(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            job = service.submit(TraversalRequest("cc", "durable"))
            service.result(job, timeout=30)
            service.store.flush()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            job = service.submit(TraversalRequest("cc", "durable"))
            service.result(job, timeout=30)
            stats = service.stats()
            assert stats.store_hits >= 1
            assert stats.executions == 0


class TestWarmRestart:
    def test_restart_answers_warm_and_seeds_cost_model(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        requests = [TraversalRequest("bfs", "durable", source=s) for s in (0, 1, 2)]
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            for request in requests:
                service.result(service.submit(request), timeout=30)
            first = service.stats()
            assert first.store_state == "ok"
            assert first.executions > 0

        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            model = service._costmodel
            assert model.stats().families >= 1, "history must seed the model"
            for request in requests:
                service.result(service.submit(request), timeout=30)
            warm = service.stats()
            assert warm.executions == 0, "warm restart must not re-execute"
            assert warm.store_hits >= 1
            assert warm.store_state == "ok"

    def test_backfill_installs_rows_into_memory_cache(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            for s in (0, 1):
                service.result(
                    service.submit(TraversalRequest("bfs", "durable", source=s)),
                    timeout=30,
                )
            service.store.flush()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            service.registry.get("durable")
            stats = service.stats()
            assert stats.store_backfilled == 2
            # Backfilled rows are served by the *memory* cache: no store hit.
            job = service.submit(TraversalRequest("bfs", "durable", source=0))
            service.result(job, timeout=30)
            assert service.stats().cache.hits >= 1

    def test_cost_seed_reproduces_admission_estimates(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            jobs = [
                service.submit(TraversalRequest("bfs", "durable", source=s))
                for s in range(4)
            ]
            for job in jobs:
                service.result(job, timeout=30)
            model = service._costmodel
            # The service normalizes the request's system key, so the family
            # must come from a submitted job, not a raw request.
            family = jobs[0].request.batch_key
            live_estimate = model.estimate_job(family)
            live_state = model.family_state(family)
            assert live_state is not None

        with make_service(path) as service:
            seeded = service._costmodel
            assert seeded.family_samples(family) > 0
            seeded_estimate = seeded.estimate_job(family)
            # The EWMA state round-trips through TEXT/REAL columns: the
            # restarted model must reproduce the same admission estimate
            # within the model's own estimate-error margin.
            assert seeded_estimate == pytest.approx(live_estimate, rel=1e-9)

    def test_seed_does_not_override_live_samples(self, tmp_path):
        model = CostModel()
        model.observe(("bfs", "g"), 2, 0.5)
        before = model.estimate_job(("bfs", "g"))
        seeded = model.seed(
            [
                {
                    "family": ("bfs", "g"),
                    "group_seconds": 99.0,
                    "job_seconds": 99.0,
                    "samples": 7,
                    "iterations": None,
                },
                {
                    "family": ("sssp", "g"),
                    "group_seconds": 1.0,
                    "job_seconds": 0.5,
                    "samples": 3,
                    "iterations": 4.0,
                },
            ]
        )
        assert seeded == 1
        assert model.estimate_job(("bfs", "g")) == before
        assert model.family_samples(("sssp", "g")) == 3


class TestQuarantine:
    def test_corrupt_database_is_quarantined_and_store_boots(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_bytes(b"this is not a sqlite database, not even close")
        with ServingStore(path) as store:
            assert store.state == "quarantined"
            assert store.quarantined_path is not None
            assert os.path.exists(store.quarantined_path)
            # The fresh database is fully usable.
            graph = make_graph()
            store.record_load("durable", graph)
            store.flush()
        ok, detail = store_verify(path)
        assert ok, detail

    def test_schema_version_mismatch_quarantines(self, tmp_path):
        path = tmp_path / "store.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE store_meta (key TEXT PRIMARY KEY, value TEXT)")
        conn.execute("INSERT INTO store_meta VALUES ('schema_version', '999')")
        conn.commit()
        conn.close()
        with ServingStore(path) as store:
            assert store.state == "quarantined"

    def test_service_reports_quarantined_state(self, tmp_path):
        path = tmp_path / "store.db"
        path.write_bytes(b"garbage" * 64)
        with make_service(path) as service:
            graph = make_graph()
            service.registry.register("durable", lambda: graph)
            job = service.submit(TraversalRequest("bfs", "durable", source=0))
            service.result(job, timeout=30)
            stats = service.stats()
            assert stats.store_state == "quarantined"
            assert stats.failed == 0


class TestChaosDegradation:
    def test_poisoned_writes_degrade_without_request_failures(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with make_service(
            path, fault_plan="store.write:permanent"
        ) as service:
            service.registry.register("durable", lambda: graph)
            jobs = [
                service.submit(TraversalRequest("bfs", "durable", source=s))
                for s in range(4)
            ]
            for job in jobs:
                service.result(job, timeout=30)
            assert wait_for(lambda: service.stats().store_state == "degraded")
            stats = service.stats()
            assert stats.failed == 0, "store chaos must never fail requests"
            assert stats.completed == len(jobs)
            assert stats.store_errors > 0

    def test_poisoned_reads_degrade_to_misses(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            job = service.submit(TraversalRequest("bfs", "durable", source=0))
            service.result(job, timeout=30)

        with make_service(
            path, fault_plan="store.read:permanent"
        ) as service:
            service.registry.register("durable", lambda: graph)
            job = service.submit(TraversalRequest("bfs", "durable", source=0))
            result = service.result(job, timeout=30)
            assert result is not None
            stats = service.stats()
            assert stats.failed == 0
            assert stats.store_hits == 0

    def test_open_fault_degrades_then_recovers_on_probe(self, tmp_path):
        path = tmp_path / "store.db"
        plan = faults.FaultPlan.from_spec("store.open:transient:n=1:limit=1")
        faults.activate(plan)
        try:
            store = ServingStore(path, breaker_cooldown=0.05)
        finally:
            faults.deactivate()
        try:
            assert store.state == "degraded"
            graph = make_graph()
            assert wait_for(
                lambda: store.lookup(("g", "bfs", 0, "s", "sys")) is None
                and store.state == "ok",
                timeout=10.0,
                interval=0.1,
            ), "breaker probe must reopen the connection"
        finally:
            store.close()

    def test_store_disabled_when_unconfigured(self):
        with Service(config=ServiceConfig(max_workers=2)) as service:
            assert service.store is None
            assert service.stats().store_state == "disabled"


class TestOperatorHelpers:
    def test_info_verify_vacuum(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            job = service.submit(TraversalRequest("bfs", "durable", source=0))
            service.result(job, timeout=30)
        info = store_info(path)
        assert info["schema_version"] == "1"
        assert info["journal_mode"] == "wal"
        assert info["graph_catalog"] == 1
        assert info["result_cache"] >= 1
        assert info["cost_history"] >= 1
        assert info["graphs"][0]["name"] == "durable"
        assert info["graphs"][0]["fingerprint"] == graph_fingerprint(graph)
        ok, detail = store_verify(path)
        assert ok and detail == "ok"
        store_vacuum(path)
        ok, _ = store_verify(path)
        assert ok

    def test_info_raises_store_error_on_missing_file(self, tmp_path):
        with pytest.raises(StoreError):
            store_info(tmp_path / "absent.db")

    def test_verify_reports_corruption(self, tmp_path):
        path = tmp_path / "bad.db"
        path.write_bytes(b"not a database at all, definitely")
        ok, detail = store_verify(path)
        assert not ok


class TestMetricsAndConfig:
    def test_store_metrics_exposed(self, tmp_path):
        path = tmp_path / "store.db"
        graph = make_graph()
        with make_service(path) as service:
            service.registry.register("durable", lambda: graph)
            job = service.submit(TraversalRequest("bfs", "durable", source=0))
            service.result(job, timeout=30)
            rendered = service.collect_metrics().render_prometheus()
            assert "repro_store_operations_total" in rendered
            assert "repro_store_state" in rendered
            assert "repro_store_pending_writes" in rendered

    def test_state_codes_cover_every_state(self):
        assert set(STORE_STATE_CODES) == {"ok", "degraded", "quarantined", "disabled"}

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(store_path="")
        with pytest.raises(ConfigurationError):
            ServiceConfig(store_path="x.db", store_flush_interval=0.0)

    def test_dropped_writes_counted_when_queue_full(self, tmp_path):
        path = tmp_path / "store.db"
        store = ServingStore(path, queue_limit=1, flush_interval=60.0)
        try:
            graph = make_graph()
            # The flush thread sleeps for a minute, so the second enqueue
            # overflows the single-slot queue.
            store.record_eviction("a")
            store.record_eviction("b")
            store.record_eviction("c")
            assert store.stats().dropped >= 1
        finally:
            store.close()
