"""Tests for the Subway-style baseline (subgraph compaction + explicit copy)."""

import numpy as np
import pytest

from repro.baselines.subway import SUBWAY_LABEL, SubwayEngine, run_subway
from repro.errors import ConfigurationError
from repro.traversal.bfs import bfs_levels
from repro.traversal.cc import cc_labels
from repro.traversal.sssp import sssp_distances
from repro.types import Application


class TestSubwayCorrectness:
    def test_bfs_levels_match_reference(self, random_graph):
        result = run_subway(Application.BFS, random_graph, source=2)
        assert np.array_equal(result.values, bfs_levels(random_graph, 2))
        assert result.strategy == SUBWAY_LABEL

    def test_sssp_distances_match_reference(self, random_graph):
        result = run_subway(Application.SSSP, random_graph, source=2)
        assert np.allclose(result.values, sssp_distances(random_graph, 2), equal_nan=True)

    def test_cc_labels_match_reference(self, disconnected_graph):
        result = run_subway(Application.CC, disconnected_graph)
        assert np.array_equal(result.values, cc_labels(disconnected_graph))

    def test_source_required_for_bfs(self, random_graph):
        with pytest.raises(ConfigurationError):
            run_subway(Application.BFS, random_graph)


class TestSubwayCostModel:
    def test_traffic_is_block_transfers_only(self, random_graph):
        result = run_subway(Application.BFS, random_graph, source=2)
        traffic = result.metrics.traffic
        assert traffic.block_transfer_bytes > 0
        assert traffic.request_histogram.total_requests == 0
        assert traffic.uvm_migrated_bytes == 0

    def test_transfers_cover_active_edges(self, random_graph):
        result = run_subway(Application.BFS, random_graph, source=2)
        traffic = result.metrics.traffic
        assert traffic.block_transfer_bytes >= (
            traffic.edges_processed * random_graph.element_bytes
        )

    def test_sync_slower_than_async(self, random_graph):
        asynchronous = run_subway(Application.BFS, random_graph, source=2, asynchronous=True)
        synchronous = run_subway(Application.BFS, random_graph, source=2, asynchronous=False)
        assert synchronous.seconds >= asynchronous.seconds

    def test_engine_counts_iterations(self, random_graph):
        engine = SubwayEngine(random_graph)
        engine.process_frontier(np.array([0, 1, 2]))
        engine.process_frontier(np.array([], dtype=np.int64))
        assert engine.iterations == 2
        metrics = engine.finalize()
        assert metrics.iterations == 2
        assert metrics.strategy == SUBWAY_LABEL

    def test_weights_increase_transfer_for_sssp(self, random_graph):
        bfs_run = run_subway(Application.BFS, random_graph, source=2)
        sssp_run = run_subway(Application.SSSP, random_graph, source=2)
        assert (
            sssp_run.metrics.traffic.block_transfer_bytes
            > bfs_run.metrics.traffic.block_transfer_bytes
        )

    def test_empty_frontier_is_free(self, random_graph):
        engine = SubwayEngine(random_graph)
        breakdown = engine.process_frontier(np.array([], dtype=np.int64))
        assert breakdown.total() == 0.0


class TestSubwayVersusEmogi:
    def test_emogi_wins_on_out_of_memory_bfs(self):
        """The Table 3 headline: EMOGI outperforms Subway on BFS."""
        from repro.graph.datasets import load_dataset, pick_sources
        from repro.traversal.api import bfs
        from repro.types import AccessStrategy

        graph = load_dataset("GK", element_bytes=4, scale=20000, use_cache=False)
        source = int(pick_sources(graph, 1, seed=9)[0])
        subway = run_subway(Application.BFS, graph, source=source)
        emogi = bfs(graph, source, strategy=AccessStrategy.MERGED_ALIGNED)
        assert emogi.seconds < subway.seconds
