"""Tests for the LRU result cache and for request normalization/keys."""

import numpy as np
import pytest

from repro.config import volta_pcie3
from repro.errors import ConfigurationError
from repro.service import ResultCache, TraversalRequest
from repro.types import AccessStrategy, Application


def request(**overrides) -> TraversalRequest:
    fields = {"application": Application.BFS, "graph": "g", "source": 0}
    fields.update(overrides)
    return TraversalRequest(**fields)


class TestTraversalRequest:
    def test_strings_coerced_to_enums(self):
        req = TraversalRequest("sssp", "g", source=3, strategy="merged")
        assert req.application is Application.SSSP
        assert req.strategy is AccessStrategy.MERGED

    def test_cc_source_collapses_to_none(self):
        assert TraversalRequest("cc", "g", source=99).source is None
        assert TraversalRequest("cc", "g") == TraversalRequest("cc", "g", source=5)

    def test_numpy_sources_normalized(self):
        assert request(source=np.int64(4)).source == 4
        assert request(source=np.int32(4)).source == 4
        assert request(source=np.float64(4.0)).source == 4
        assert isinstance(request(source=np.int64(4)).source, int)

    def test_bad_sources_rejected(self):
        with pytest.raises(ConfigurationError):
            request(source=3.5)
        with pytest.raises(ConfigurationError):
            request(source=True)
        with pytest.raises(ConfigurationError):
            request(source=None)
        with pytest.raises(ConfigurationError):
            request(source="zero")

    def test_requires_graph_name(self):
        with pytest.raises(ValueError):
            TraversalRequest(Application.BFS, "", source=0)

    def test_identical_requests_hash_equal(self):
        assert request(source=np.int64(1)) == request(source=1)
        assert hash(request(source=np.int64(1))) == hash(request(source=1))
        assert len({request(source=1), request(source=1)}) == 1

    def test_cache_key_distinguishes_every_dimension(self):
        base = request()
        assert base.cache_key != request(source=1).cache_key
        assert base.cache_key != request(application="sssp").cache_key
        assert base.cache_key != request(graph="h").cache_key
        assert base.cache_key != request(strategy="uvm").cache_key
        assert base.cache_key != base.with_system(volta_pcie3()).cache_key

    def test_batch_key_ignores_source(self):
        assert request(source=0).batch_key == request(source=7).batch_key
        assert request().batch_key != request(strategy="uvm").batch_key

    def test_system_fingerprint_stable(self):
        system = volta_pcie3()
        assert system.fingerprint() == volta_pcie3().fingerprint()
        assert system.fingerprint() != system.with_gpu_memory(123456).fingerprint()
        assert request().with_system(system).system_key == system.fingerprint()


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(max_entries=4)
        key = request().cache_key
        assert cache.get(key) is None
        cache.put(key, "result")
        assert cache.get(key) == "result"
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_lru_eviction_by_capacity(self):
        cache = ResultCache(max_entries=2)
        keys = [request(source=i).cache_key for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, i)
        assert cache.get(keys[0]) is None  # oldest evicted
        assert cache.get(keys[1]) == 1
        assert cache.get(keys[2]) == 2
        assert cache.stats().evictions == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        a, b, c = (request(source=i).cache_key for i in range(3))
        cache.put(a, "a")
        cache.put(b, "b")
        cache.get(a)
        cache.put(c, "c")  # b is now the LRU entry
        assert cache.get(b) is None
        assert cache.get(a) == "a"

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(max_entries=0)
        key = request().cache_key
        cache.put(key, "result")
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_clear(self):
        cache = ResultCache()
        cache.put(request().cache_key, "result")
        cache.clear()
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            ResultCache(max_entries=-1)
