"""Tests for the plain-text table renderer."""

from repro.bench.report import format_key_values, format_table


class TestFormatTable:
    def test_basic_layout(self):
        table = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("| name")
        assert lines[1].startswith("|-")
        assert len(lines) == 4

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Title")
        assert table.splitlines()[0] == "My Title"

    def test_columns_are_aligned(self):
        table = format_table(["col"], [["short"], ["a much longer cell"]])
        lines = [line for line in table.splitlines() if line.startswith("|")]
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        table = format_table(["v"], [[0.123456], [12.3456], [12345.6]])
        assert "0.123" in table
        assert "12.35" in table
        assert "12,346" in table

    def test_int_formatting_uses_thousands_separator(self):
        table = format_table(["v"], [[1234567]])
        assert "1,234,567" in table

    def test_zero(self):
        assert "| 0" in format_table(["v"], [[0.0]])

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "| a" in table


class TestFormatKeyValues:
    def test_alignment(self):
        text = format_key_values({"short": 1, "a_longer_key": 2.5})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        text = format_key_values({"a": 1}, title="Header")
        assert text.splitlines()[0] == "Header"

    def test_empty(self):
        assert format_key_values({}) == ""
