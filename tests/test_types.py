"""Tests for repro.types."""

import pytest

from repro.types import (
    ALL_STRATEGIES,
    AccessStrategy,
    Application,
    ByteSize,
    EMOGI_STRATEGY,
    MemorySpace,
    gibibytes,
    gigabytes,
)


class TestAccessStrategy:
    def test_four_strategies(self):
        assert len(ALL_STRATEGIES) == 4
        assert set(ALL_STRATEGIES) == set(AccessStrategy)

    def test_emogi_is_merged_aligned(self):
        assert EMOGI_STRATEGY is AccessStrategy.MERGED_ALIGNED

    def test_zero_copy_flag(self):
        assert not AccessStrategy.UVM.is_zero_copy
        assert AccessStrategy.NAIVE.is_zero_copy
        assert AccessStrategy.MERGED.is_zero_copy
        assert AccessStrategy.MERGED_ALIGNED.is_zero_copy

    def test_constructible_from_value(self):
        assert AccessStrategy("uvm") is AccessStrategy.UVM
        assert AccessStrategy("merged_aligned") is AccessStrategy.MERGED_ALIGNED


class TestApplication:
    def test_values(self):
        assert {a.value for a in Application} == {"bfs", "sssp", "cc", "pagerank"}

    def test_from_string(self):
        assert Application("bfs") is Application.BFS

    def test_streaming_flag(self):
        assert Application.CC.is_streaming
        assert Application.PAGERANK.is_streaming
        assert not Application.BFS.is_streaming
        assert not Application.SSSP.is_streaming


class TestMemorySpace:
    def test_three_spaces(self):
        assert {m.value for m in MemorySpace} == {"device", "host_pinned", "uvm"}


class TestByteSize:
    def test_conversions(self):
        size = ByteSize(3 * 1024**3)
        assert size.gib == pytest.approx(3.0)
        assert size.mib == pytest.approx(3 * 1024)
        assert size.kib == pytest.approx(3 * 1024**2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ByteSize(-1)

    @pytest.mark.parametrize(
        "value, expected",
        [
            (512, "512 B"),
            (2048, "2.00 KiB"),
            (3 * 1024**2, "3.00 MiB"),
            (5 * 1024**3, "5.00 GiB"),
        ],
    )
    def test_str(self, value, expected):
        assert str(ByteSize(value)) == expected


class TestUnitHelpers:
    def test_gigabytes_is_decimal(self):
        assert gigabytes(1) == 1_000_000_000

    def test_gibibytes_is_binary(self):
        assert gibibytes(1) == 1024**3

    def test_fractional(self):
        assert gigabytes(0.5) == 500_000_000
        assert gibibytes(0.5) == 512 * 1024**2
