"""Tests for the traffic record and the calibrated timing model."""

import pytest

from repro.config import ampere_pcie4, default_system
from repro.memsim.coalescer import RequestHistogram
from repro.memsim.metrics import TimingModel, TrafficRecord


class TestTrafficRecord:
    def test_host_bytes_combines_all_paths(self):
        record = TrafficRecord()
        record.request_histogram.add(128, 2)
        record.uvm_migrated_bytes = 4096
        record.block_transfer_bytes = 1000
        assert record.zero_copy_bytes == 256
        assert record.host_bytes_read == 256 + 4096 + 1000

    def test_io_amplification(self):
        record = TrafficRecord()
        record.uvm_migrated_bytes = 2000
        assert record.io_amplification(1000) == pytest.approx(2.0)
        assert record.io_amplification(0) == 0.0

    def test_merge(self):
        first = TrafficRecord(edges_processed=10, kernel_launches=1)
        first.request_histogram.add(32, 1)
        second = TrafficRecord(edges_processed=5, kernel_launches=2, uvm_migrations=3)
        second.request_histogram.add(32, 4)
        first.merge(second)
        assert first.edges_processed == 15
        assert first.kernel_launches == 3
        assert first.uvm_migrations == 3
        assert first.request_histogram.counts[32] == 5


class TestTimingModel:
    @pytest.fixture
    def model(self):
        return TimingModel(default_system())

    def test_zero_copy_time_scales_with_requests(self, model):
        small = model.zero_copy_time(RequestHistogram.single(128, 1000))
        large = model.zero_copy_time(RequestHistogram.single(128, 10_000))
        assert large.interconnect_seconds == pytest.approx(
            10 * small.interconnect_seconds, rel=0.01
        )

    def test_uvm_time_includes_fault_overhead(self, model):
        with_faults = model.uvm_time(migrated_bytes=1 << 20, migrations=256)
        without_faults = model.uvm_time(migrated_bytes=1 << 20, migrations=0)
        assert with_faults.fault_handling_seconds > 0
        assert without_faults.fault_handling_seconds == 0
        assert with_faults.total() > without_faults.total()

    def test_uvm_fault_overhead_does_not_scale_with_link(self):
        gen3 = TimingModel(default_system()).uvm_time(1 << 20, 256)
        gen4 = TimingModel(ampere_pcie4()).uvm_time(1 << 20, 256)
        assert gen4.interconnect_seconds < gen3.interconnect_seconds
        assert gen4.fault_handling_seconds == pytest.approx(gen3.fault_handling_seconds)

    def test_block_transfer_time(self, model):
        breakdown = model.block_transfer_time(12_300_000_000, include_launch=False)
        assert breakdown.interconnect_seconds == pytest.approx(1.0, rel=0.05)

    def test_block_transfer_launch_overhead(self, model):
        with_launch = model.block_transfer_time(1000, include_launch=True)
        without_launch = model.block_transfer_time(1000, include_launch=False)
        assert with_launch.host_preprocess_seconds > 0
        assert without_launch.host_preprocess_seconds == 0

    def test_compute_time(self, model):
        breakdown = model.compute_time(edges=10_000_000, vertices=1_000_000)
        expected = (
            10_000_000 / default_system().gpu.compute_edges_per_second
            + 1_000_000 / default_system().gpu.compute_vertices_per_second
        )
        assert breakdown.compute_seconds == pytest.approx(expected)

    def test_kernel_launch_time(self, model):
        breakdown = model.kernel_launch_time(5)
        assert breakdown.kernel_launch_seconds == pytest.approx(
            5 * default_system().gpu.kernel_launch_overhead_us * 1e-6
        )

    def test_host_gather_time(self, model):
        breakdown = model.host_gather_time(1_000_000)
        assert breakdown.host_preprocess_seconds == pytest.approx(
            1_000_000 * default_system().host.subgraph_gather_ns_per_edge * 1e-9
        )

    def test_memcpy_peak(self, model):
        assert model.memcpy_peak_gbps == pytest.approx(12.3, abs=0.5)

    def test_zero_copy_128b_faster_than_32b_for_same_bytes(self, model):
        bytes_needed = 128 * 10_000
        merged = model.zero_copy_time(RequestHistogram.single(128, 10_000))
        strided = model.zero_copy_time(RequestHistogram.single(32, 40_000))
        assert merged.total() < strided.total()
        assert bytes_needed == RequestHistogram.single(32, 40_000).total_bytes
