"""Tests for the graph registry: memoization, metadata, LRU byte budget."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServiceError, UnknownGraphError
from repro.graph.builder import from_edge_array
from repro.service import GraphRegistry


def make_graph(name: str, num_edges: int = 16) -> "object":
    sources = np.arange(num_edges) % 4
    destinations = (np.arange(num_edges) + 1) % 5
    return from_edge_array(
        sources, destinations, num_vertices=5, directed=True, name=name
    )


class CountingLoader:
    def __init__(self, graph):
        self.graph = graph
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return self.graph


class TestRegistration:
    def test_register_and_get(self):
        registry = GraphRegistry()
        registry.register_graph(make_graph("a"))
        assert "a" in registry
        assert registry.get("a").name == "a"
        assert registry.names() == ("a",)

    def test_register_under_custom_name(self):
        registry = GraphRegistry()
        registry.register_graph(make_graph("a"), name="alias")
        assert "alias" in registry and "a" not in registry

    def test_duplicate_registration_rejected(self):
        registry = GraphRegistry()
        registry.register_graph(make_graph("a"))
        with pytest.raises(ServiceError):
            registry.register_graph(make_graph("a"))

    def test_empty_name_rejected(self):
        registry = GraphRegistry()
        with pytest.raises(ServiceError):
            registry.register("", lambda: make_graph("x"))

    def test_unknown_graph(self):
        registry = GraphRegistry()
        with pytest.raises(UnknownGraphError):
            registry.get("nope")

    def test_loader_must_return_graph(self):
        registry = GraphRegistry()
        registry.register("bad", lambda: 42)
        with pytest.raises(ServiceError):
            registry.get("bad")

    def test_register_dataset(self):
        registry = GraphRegistry()
        registry.register_dataset("GK", scale=200000)
        graph = registry.get("GK")
        assert graph.meta["symbol"] == "GK"


class TestMemoization:
    def test_loader_called_once(self):
        loader = CountingLoader(make_graph("a"))
        registry = GraphRegistry()
        registry.register("a", loader)
        first = registry.get("a")
        second = registry.get("a")
        assert first is second
        assert loader.calls == 1

    def test_hit_miss_counters(self):
        registry = GraphRegistry()
        registry.register_graph(make_graph("a"))
        registry.get("a")
        registry.get("a")
        registry.get("a")
        stats = registry.stats()
        assert stats.misses == 1 and stats.loads == 1
        assert stats.hits == 2

    def test_metadata(self):
        registry = GraphRegistry()
        graph = make_graph("a")
        registry.register_graph(graph)
        meta = registry.metadata("a")
        assert meta["num_vertices"] == graph.num_vertices
        assert meta["num_edges"] == graph.num_edges
        assert meta["total_bytes"] == graph.total_bytes
        assert "a" in registry.resident_names()


class TestConcurrentLoading:
    def test_concurrent_gets_share_one_load(self):
        graph = make_graph("a")
        started, release = threading.Event(), threading.Event()
        calls = []

        def slow_loader():
            calls.append(1)
            started.set()
            release.wait(10)
            return graph

        registry = GraphRegistry()
        registry.register("a", slow_loader)
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(registry.get("a")))
            for _ in range(6)
        ]
        for thread in threads:
            thread.start()
        assert started.wait(10)
        release.set()
        for thread in threads:
            thread.join(10)
        assert len(calls) == 1
        assert len(results) == 6 and all(r is graph for r in results)

    def test_slow_load_does_not_block_other_graphs(self):
        started, release = threading.Event(), threading.Event()

        def slow_loader():
            started.set()
            release.wait(10)
            return make_graph("slow")

        registry = GraphRegistry()
        registry.register("slow", slow_loader)
        registry.register_graph(make_graph("fast"))
        thread = threading.Thread(target=lambda: registry.get("slow"))
        thread.start()
        try:
            assert started.wait(10)
            # while "slow" is mid-load, other graphs stay fully available
            assert registry.get("fast").name == "fast"
        finally:
            release.set()
            thread.join(10)
        assert registry.get("slow").name == "slow"

    def test_failed_load_retried_by_next_caller(self):
        graph = make_graph("a")
        calls = []

        def flaky_loader():
            calls.append(1)
            if len(calls) == 1:
                raise OSError("transient")
            return graph

        registry = GraphRegistry()
        registry.register("a", flaky_loader)
        with pytest.raises(OSError):
            registry.get("a")
        assert registry.get("a") is graph
        assert len(calls) == 2


class TestEviction:
    def test_lru_eviction_honors_byte_budget(self):
        graphs = {name: make_graph(name) for name in ("a", "b", "c")}
        per_graph = graphs["a"].total_bytes
        assert all(g.total_bytes == per_graph for g in graphs.values())
        loaders = {name: CountingLoader(g) for name, g in graphs.items()}
        registry = GraphRegistry(budget_bytes=2 * per_graph)
        for name, loader in loaders.items():
            registry.register(name, loader)

        registry.get("a")
        registry.get("b")
        assert registry.resident_names() == ("a", "b")
        registry.get("c")  # budget forces the LRU graph (a) out
        assert registry.resident_names() == ("b", "c")
        assert registry.resident_bytes() <= registry.budget_bytes
        assert registry.stats().evictions == 1

        registry.get("a")  # transparently reloaded, evicting b
        assert loaders["a"].calls == 2
        assert registry.resident_names() == ("c", "a")

    def test_get_refreshes_recency(self):
        registry = GraphRegistry(budget_bytes=2 * make_graph("x").total_bytes)
        for name in ("a", "b"):
            registry.register_graph(make_graph(name))
        registry.get("a")
        registry.get("b")
        registry.get("a")  # a is now the most recently used
        registry.register_graph(make_graph("c"))
        registry.get("c")
        assert registry.resident_names() == ("a", "c")

    def test_most_recent_graph_kept_even_over_budget(self):
        graph = make_graph("big", num_edges=64)
        registry = GraphRegistry(budget_bytes=graph.total_bytes // 2)
        registry.register_graph(graph)
        assert registry.get("big") is graph
        assert registry.resident_names() == ("big",)

    def test_explicit_evict_and_clear(self):
        registry = GraphRegistry()
        registry.register_graph(make_graph("a"))
        registry.register_graph(make_graph("b"))
        registry.get("a")
        registry.get("b")
        assert registry.evict("a") is True
        assert registry.evict("a") is False
        registry.clear_resident()
        assert registry.resident_names() == ()
        assert len(registry) == 2  # registrations survive

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            GraphRegistry(budget_bytes=0)


class TestPinnedGraphs:
    """register_graph pins the graph in its loader closure: eviction drops
    only the registry reference, so the stats must say so explicitly."""

    def test_pinned_bytes_reported_separately(self):
        registry = GraphRegistry()
        pinned = make_graph("pinned")
        registry.register_graph(pinned)
        registry.register("lazy", lambda: make_graph("lazy"))
        registry.get("pinned")
        registry.get("lazy")
        stats = registry.stats()
        assert stats.pinned_graphs == 1
        assert stats.pinned_bytes == pinned.total_bytes
        assert stats.resident_graphs == 2

    def test_eviction_does_not_shrink_pinned_bytes(self):
        registry = GraphRegistry()
        pinned = make_graph("pinned")
        registry.register_graph(pinned)
        registry.get("pinned")
        assert registry.evict("pinned") is True
        stats = registry.stats()
        assert stats.resident_bytes == 0  # the registry reference is gone...
        assert stats.pinned_bytes == pinned.total_bytes  # ...the bytes are not
        # and the "reload" hands back the very same pinned object
        assert registry.get("pinned") is pinned


class TestLoaderFailureReelection:
    """A failed load releases the per-name election so the next get() (or a
    concurrent waiter) re-elects itself instead of waiting forever."""

    def test_sequential_retry_after_failure(self):
        graph = make_graph("flaky")
        calls = {"count": 0}

        def loader():
            calls["count"] += 1
            if calls["count"] == 1:
                raise OSError("disk hiccup")
            return graph

        registry = GraphRegistry()
        registry.register("flaky", loader)
        with pytest.raises(OSError):
            registry.get("flaky")
        assert registry.get("flaky") is graph
        assert calls["count"] == 2
        stats = registry.stats()
        assert stats.loads == 1  # only the successful load counts
        assert stats.misses == 2

    def test_concurrent_waiter_reelects_after_failure(self):
        graph = make_graph("flaky")
        entered = threading.Event()
        release = threading.Event()
        calls = {"count": 0}

        def loader():
            calls["count"] += 1
            if calls["count"] == 1:
                entered.set()
                release.wait(10)
                raise OSError("disk hiccup")
            return graph

        registry = GraphRegistry()
        registry.register("flaky", loader)
        outcomes = {}

        def first():
            try:
                outcomes["first"] = registry.get("flaky")
            except OSError as exc:
                outcomes["first"] = exc

        def second():
            outcomes["second"] = registry.get("flaky")

        thread_a = threading.Thread(target=first)
        thread_a.start()
        assert entered.wait(10)  # A holds the election and is mid-load
        thread_b = threading.Thread(target=second)
        thread_b.start()
        release.set()  # A's load now fails
        thread_a.join(timeout=10)
        thread_b.join(timeout=10)
        assert not thread_b.is_alive(), "waiter was never re-elected"
        assert isinstance(outcomes["first"], OSError)
        assert outcomes["second"] is graph
        assert calls["count"] == 2
