"""Tests for repro.graph.analysis (degree statistics, Figure 6 CDF)."""

import numpy as np
import pytest

from repro.graph.analysis import (
    degree_histogram,
    degree_stats,
    edge_cdf_by_degree,
    expected_sectors_per_neighbor_list,
    fraction_of_edges_in_degree_range,
    neighbor_list_alignment_fraction,
)
from repro.graph.builder import from_neighbor_lists
from repro.graph.generators import uniform_random_graph


class TestDegreeStats:
    def test_basic(self, paper_example_graph):
        stats = degree_stats(paper_example_graph)
        assert stats.num_vertices == 5
        assert stats.num_edges == 12
        assert stats.average_degree == pytest.approx(2.4)
        assert stats.max_degree == 4
        assert stats.min_degree == 1

    def test_empty_graph(self):
        from repro.graph.csr import CSRGraph

        empty = CSRGraph(offsets=np.array([0]), edges=np.array([], dtype=np.int64))
        stats = degree_stats(empty)
        assert stats.num_vertices == 0
        assert stats.average_degree == 0.0

    def test_degree_histogram(self, star_graph):
        values, counts = degree_histogram(star_graph)
        histogram = dict(zip(values.tolist(), counts.tolist()))
        assert histogram == {1: 8, 8: 1}


class TestEdgeCDF:
    def test_cdf_reaches_one(self, random_graph):
        axis, cdf = edge_cdf_by_degree(random_graph)
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_truncation(self, random_graph):
        axis, cdf = edge_cdf_by_degree(random_graph, max_degree=10)
        assert axis.max() <= 10

    def test_resampling(self, random_graph):
        axis, cdf = edge_cdf_by_degree(random_graph, num_points=32)
        assert axis.size == 32
        assert cdf.size == 32

    def test_uniform_graph_edges_concentrated_near_mean(self):
        # The GU observation from Figure 6: all edges belong to vertices with
        # degree in a narrow band around the mean.
        graph = uniform_random_graph(2000, 64000, seed=3, degree_spread=0.5)
        fraction = fraction_of_edges_in_degree_range(graph, 16, 48)
        assert fraction > 0.95

    def test_fraction_of_edges_range_is_total_for_full_range(self, random_graph):
        full = fraction_of_edges_in_degree_range(random_graph, 0, random_graph.max_degree())
        assert full == pytest.approx(1.0)


class TestAlignmentStatistics:
    def test_alignment_fraction_of_dense_lists(self):
        # 16 neighbor lists of exactly 16 elements each (8-byte): every list
        # starts on a 128-byte boundary.
        lists = [[j for j in range(16)] for _ in range(16)]
        graph = from_neighbor_lists(lists)
        assert neighbor_list_alignment_fraction(graph) == pytest.approx(1.0)

    def test_alignment_fraction_random_lists_is_low(self, random_graph):
        # §5.3.1: with 8-byte elements only ~1/16 of lists are 128B-aligned.
        fraction = neighbor_list_alignment_fraction(random_graph)
        assert fraction < 0.3

    def test_expected_sectors(self, paper_example_graph):
        sectors = expected_sectors_per_neighbor_list(paper_example_graph)
        assert sectors >= 1.0

    def test_empty_graph_fractions(self):
        from repro.graph.csr import CSRGraph

        empty = CSRGraph(offsets=np.array([0]), edges=np.array([], dtype=np.int64))
        assert neighbor_list_alignment_fraction(empty) == 0.0
        assert expected_sectors_per_neighbor_list(empty) == 0.0
