"""Tests for the observability subsystem: spans, metrics, trace validation.

Covers the pure building blocks (:mod:`repro.obs.trace`,
:mod:`repro.obs.metrics`, :mod:`repro.obs.check`) and the end-to-end contract
the serving layer guarantees: every traced request gets four tiling lifecycle
spans whose durations sum to its measured latency, fused requests point at a
shared engine sweep span, and kernel counters surface both on results and in
the Prometheus exposition.
"""

import json
import threading

import pytest

from repro.config import ServiceConfig
from repro.obs import MetricsRegistry, Span, Tracer, tracing_enabled
from repro.obs.check import LIFECYCLE_STAGES, check_trace_lines
from repro.obs.trace import ENV_SWITCH
from repro.service import GraphRegistry, Job, Service, TraversalRequest
from repro.service.stats import LatencyStats
from repro.traversal.api import run
from repro.traversal.multisource import run_batch
from repro.types import Application


@pytest.fixture
def registry(random_graph):
    registry = GraphRegistry()
    registry.register_graph(random_graph)
    return registry


def make_service(registry, **config_overrides) -> Service:
    config = ServiceConfig(**{"max_workers": 2, **config_overrides})
    return Service(registry=registry, config=config)


# ---------------------------------------------------------------------- #
# Kill switch
# ---------------------------------------------------------------------- #
class TestTracingEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv(ENV_SWITCH, raising=False)
        assert tracing_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF "])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(ENV_SWITCH, value)
        assert tracing_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", ""])
    def test_other_values_enable(self, monkeypatch, value):
        monkeypatch.setenv(ENV_SWITCH, value)
        assert tracing_enabled() is True

    def test_explicit_flag_beats_environment(self, monkeypatch):
        monkeypatch.setenv(ENV_SWITCH, "0")
        assert Tracer(enabled=True).enabled is True
        monkeypatch.delenv(ENV_SWITCH)
        assert Tracer(enabled=False).enabled is False

    def test_disabled_tracer_records_nothing(self, monkeypatch):
        monkeypatch.setenv(ENV_SWITCH, "0")
        tracer = Tracer()
        assert tracer.begin() is None
        tracer.emit(Span("t-1", "s-1", "x", 0.0, 0.0))
        assert len(tracer) == 0


# ---------------------------------------------------------------------- #
# Tracer: sampling and ring buffer
# ---------------------------------------------------------------------- #
class TestTracer:
    def test_full_sampling_traces_everything(self):
        tracer = Tracer(sample=1.0, enabled=True)
        ids = [tracer.begin() for _ in range(5)]
        assert all(ids)
        assert len(set(ids)) == 5

    def test_systematic_sampling_is_exact(self):
        # sample=0.25 must select exactly every 4th request, not a coin flip.
        tracer = Tracer(sample=0.25, enabled=True)
        picks = [tracer.begin() is not None for _ in range(40)]
        assert sum(picks) == 10
        assert picks == [(i % 4) == 3 for i in range(40)]

    def test_zero_sampling_traces_nothing(self):
        tracer = Tracer(sample=0.0, enabled=True)
        assert all(tracer.begin() is None for _ in range(10))

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=4, enabled=True)
        spans = [Span("t", f"s{i}", "x", 0.0, 0.0) for i in range(6)]
        tracer.emit_many(spans)
        drained = tracer.drain()
        assert [s.span_id for s in drained] == ["s2", "s3", "s4", "s5"]
        assert len(tracer) == 0  # drain clears
        described = tracer.describe()
        assert described["emitted_spans"] == 6
        assert described["evicted_spans"] == 2

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(sample=1.5)

    def test_span_jsonl_round_trip(self):
        span = Span(
            "req-1", "span-1", "queue", 1.5, 0.25,
            parent_id="span-0", attributes={"policy": "edf"},
        )
        record = json.loads(span.to_jsonl())
        assert record["trace_id"] == "req-1"
        assert record["parent_id"] == "span-0"
        assert record["attributes"] == {"policy": "edf"}
        bare = Span("req-1", "span-2", "queue", 1.5, 0.25).to_json()
        assert "parent_id" not in bare and "attributes" not in bare


# ---------------------------------------------------------------------- #
# Metrics registry
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labeled_counter_children(self):
        registry = MetricsRegistry()
        counter = registry.counter("outcomes", label_names=("outcome",))
        counter.inc(outcome="completed")
        counter.inc(outcome="completed")
        counter.inc(outcome="failed")
        assert counter.value(outcome="completed") == 2
        with pytest.raises(ValueError):
            counter.inc(wrong_label="x")

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("pending")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value() == 2

    def test_summary_quantiles_match_latency_stats(self):
        summary = MetricsRegistry().summary("latency", window=8)
        samples = [0.1, 0.2, 0.3, 0.4]
        for sample in samples:
            summary.observe(sample)
        stats = summary.snapshot()
        reference = LatencyStats.from_samples(samples)
        assert stats.p50_seconds == reference.p50_seconds
        assert stats.p95_seconds == reference.p95_seconds

    def test_summary_window_bounds_quantiles_but_not_totals(self):
        summary = MetricsRegistry().summary("latency", window=2)
        for sample in (1.0, 2.0, 3.0):
            summary.observe(sample)
        stats = summary.snapshot()
        assert stats.count == 2 and stats.max_seconds == 3.0
        rendered = "\n".join(summary.render_prometheus())
        assert "latency_sum 6" in rendered
        assert "latency_count 3" in rendered

    def test_registration_is_idempotent_but_typed(self):
        registry = MetricsRegistry()
        first = registry.counter("x", help="a counter")
        assert registry.counter("x") is first
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.counter("x", label_names=("app",))

    def test_prometheus_rendering_shape(self):
        registry = MetricsRegistry()
        registry.counter("reqs", help="Requests.", label_names=("app",)).inc(app="bfs")
        registry.gauge("depth", help="Queue depth.").set(3)
        registry.summary("wait").observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP reqs Requests.\n# TYPE reqs counter" in text
        assert 'reqs{app="bfs"} 1' in text
        assert "# TYPE depth gauge\ndepth 3" in text
        assert 'wait{quantile="0.5"} 0.5' in text
        assert "wait_count 1" in text
        assert text.endswith("\n")

    def test_json_rendering_shape(self):
        registry = MetricsRegistry()
        registry.counter("reqs", label_names=("app",)).inc(app="bfs")
        registry.gauge("depth").set(3)
        document = registry.render_json()
        assert document["reqs"]["kind"] == "counter"
        assert document["reqs"]["values"] == [
            {"labels": {"app": "bfs"}, "value": 1.0}
        ]
        assert document["depth"]["values"] == 3.0


# ---------------------------------------------------------------------- #
# Kernel counters on results
# ---------------------------------------------------------------------- #
class TestKernelCounters:
    def test_solo_run_reports_counters(self, random_graph):
        result = run(Application.BFS, random_graph, source=0)
        counters = result.metrics.counters
        assert counters is not None
        assert counters.iterations > 0
        assert counters.edges_traversed > 0
        assert counters.max_frontier >= 1
        assert len(counters.frontier_sizes) == counters.iterations
        assert sum(counters.edges_per_iteration) == counters.edges_traversed

    def test_kill_switch_drops_per_iteration_detail(self, monkeypatch, random_graph):
        monkeypatch.setenv(ENV_SWITCH, "0")
        result = run(Application.BFS, random_graph, source=0)
        counters = result.metrics.counters
        # Totals are always-on; only the per-iteration log is gated.
        assert counters.iterations > 0 and counters.edges_traversed > 0
        assert counters.frontier_sizes == ()

    def test_batched_sssp_reports_relax_backend(self, random_graph):
        outcome = run_batch(Application.SSSP, random_graph, sources=(0, 1, 2))
        for metrics in outcome.batch_metrics:
            counters = metrics.counters
            assert counters is not None
            assert counters.relax_backend in ("native", "scatter", "reduceat")
            assert counters.relax_candidates > 0

    def test_counters_json_round_trip(self, random_graph):
        counters = run(Application.CC, random_graph).metrics.counters
        record = counters.to_json()
        assert record["iterations"] == counters.iterations
        assert record["edges_traversed"] == counters.edges_traversed


# ---------------------------------------------------------------------- #
# End-to-end service tracing
# ---------------------------------------------------------------------- #
class TestServiceTracing:
    def test_lifecycle_spans_tile_to_latency(self, registry, random_graph):
        with make_service(registry) as service:
            jobs = [
                service.submit(TraversalRequest("bfs", random_graph.name, source=s))
                for s in range(4)
            ]
            assert service.wait_all(timeout=30)
            spans = service.drain_traces()
        by_trace: dict = {}
        for span in spans:
            by_trace.setdefault(span["trace_id"], []).append(span)
        for job in jobs:
            trace = by_trace[job.trace_id]
            names = {span["name"] for span in trace}
            assert names == set(LIFECYCLE_STAGES)
            total = sum(span["duration_seconds"] for span in trace)
            assert total == pytest.approx(job.total_seconds, abs=1e-3)

    def test_exported_trace_passes_checker(self, registry, random_graph):
        with make_service(registry) as service:
            for source in range(3):
                service.submit(
                    TraversalRequest("sssp", random_graph.name, source=source)
                )
            service.submit(TraversalRequest("cc", random_graph.name))
            assert service.wait_all(timeout=30)
            spans = service.drain_traces()
        lines = [json.dumps(span) for span in spans]
        checked, errors = check_trace_lines(lines)
        assert errors == []
        assert checked == 4

    def test_checker_flags_broken_traces(self, registry, random_graph):
        with make_service(registry) as service:
            service.submit(TraversalRequest("bfs", random_graph.name, source=0))
            assert service.wait_all(timeout=30)
            spans = service.drain_traces()
        # Drop the cache span: the trace no longer tiles its latency.
        truncated = [s for s in spans if s["name"] != "cache"]
        _, errors = check_trace_lines([json.dumps(s) for s in truncated])
        assert any("cache" in error for error in errors)
        _, errors = check_trace_lines(["{not json"])
        assert errors

    def test_fused_jobs_share_one_sweep_span(self, registry, random_graph):
        with make_service(registry) as service:
            jobs = [
                Job(job_id=f"fused-{i}", request=request)
                for i, request in enumerate(
                    TraversalRequest("bfs", random_graph.name, source=s)
                    for s in range(3)
                )
            ]
            for job in jobs:
                job.trace_id = service._tracer.begin()
                job.enqueued_at = job.submitted_at
            service._execute_builtin(jobs, random_graph)
            spans = service.drain_traces()
        refs = {job.sweep_ref for job in jobs}
        assert len(refs) == 1 and None not in refs
        assert all(job.sweep_siblings == 2 for job in jobs)
        sweeps = [s for s in spans if s["name"] == "engine_sweep"]
        assert len(sweeps) == 1
        assert sweeps[0]["span_id"] == jobs[0].sweep_ref
        assert sweeps[0]["attributes"]["jobs"] == 3
        per_request = [s for s in spans if s["name"] == "sweep"]
        assert all(
            s["attributes"]["sweep_ref"] == jobs[0].sweep_ref for s in per_request
        )

    def test_trace_sample_zero_emits_no_spans(self, registry, random_graph):
        with make_service(registry, trace_sample=0.0) as service:
            service.submit(TraversalRequest("bfs", random_graph.name, source=0))
            assert service.wait_all(timeout=30)
            assert service.drain_traces() == []

    def test_env_kill_switch_silences_service(self, monkeypatch, random_graph):
        monkeypatch.setenv(ENV_SWITCH, "0")
        registry = GraphRegistry()
        registry.register_graph(random_graph)
        with make_service(registry) as service:
            job = service.submit(
                TraversalRequest("bfs", random_graph.name, source=0)
            )
            assert service.wait_all(timeout=30)
            assert job.trace_id is None
            assert service.drain_traces() == []

    def test_wall_clock_anchor(self):
        job = Job(job_id="j", request=TraversalRequest("cc", "g"))
        assert job.wall_clock(job.submitted_at) == job.submitted_wall
        assert job.wall_clock(job.submitted_at + 5.0) == pytest.approx(
            job.submitted_wall + 5.0
        )


# ---------------------------------------------------------------------- #
# Service metrics exposition
# ---------------------------------------------------------------------- #
class TestServiceMetrics:
    def test_request_and_kernel_series(self, registry, random_graph):
        with make_service(registry) as service:
            for source in range(3):
                service.submit(
                    TraversalRequest("bfs", random_graph.name, source=source)
                )
            assert service.wait_all(timeout=30)
            metrics = service.collect_metrics()
        assert metrics.get("repro_requests_submitted_total").value() == 3
        assert metrics.get("repro_requests_total").value(outcome="completed") == 3
        assert metrics.get("repro_kernel_iterations_total").value(app="bfs") > 0
        assert metrics.get("repro_kernel_edges_total").value(app="bfs") > 0
        assert metrics.get("repro_costmodel_observations_total").value() > 0
        text = metrics.render_prometheus()
        assert "repro_request_latency_seconds_count 3" in text
        assert "repro_costmodel_abs_error_seconds_count" in text

    def test_backend_counter_from_batched_sssp(self, registry, random_graph):
        with make_service(registry) as service:
            jobs = [
                Job(
                    job_id=f"sssp-{i}",
                    request=TraversalRequest("sssp", random_graph.name, source=i),
                )
                for i in range(3)
            ]
            service._execute_builtin(jobs, random_graph)
            metrics = service.collect_metrics()
        backend = jobs[0].result.metrics.counters.relax_backend
        assert backend in ("native", "scatter", "reduceat")
        counter = metrics.get("repro_kernel_backend_total")
        assert counter.value(app="sssp", backend=backend) == 1

    def test_deduplicated_and_outcome_counters(self, registry, random_graph):
        from repro.service import default_engine

        gate = threading.Event()

        def gated_engine(request, graph):
            gate.wait(30)  # hold the first job until the duplicate joined
            return default_engine(request, graph)

        with Service(
            registry=registry,
            config=ServiceConfig(max_workers=1),
            engine=gated_engine,
        ) as service:
            request = TraversalRequest("cc", random_graph.name)
            first = service.submit(request)
            second = service.submit(request)
            gate.set()
            assert service.wait_all(timeout=30)
            metrics = service.collect_metrics()
        assert second is first
        assert metrics.get("repro_requests_submitted_total").value() == 2
        assert metrics.get("repro_requests_deduplicated_total").value() == 1
        assert metrics.get("repro_requests_total").value(outcome="completed") == 1
