"""Property-style tests for the lane-parallel relaxation kernel.

Every backend (native C when available, indexed-ufunc scatter, sorted
reduceat) must produce per-source SSSP distances bit-identical to the solo
``run_sssp`` runs — across random weighted graphs with duplicate edges,
zero-weight edges, unreachable components, and word-boundary lane counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.builder import from_edge_array
from repro.traversal import _native
from repro.traversal.multisource import run_batch, run_sssp_batch
from repro.traversal.relax import (
    RELAX_METHODS,
    RelaxOutcome,
    active_lane_mask,
    default_method,
    expand_lane_pairs,
    relax_lanes,
)
from repro.traversal.sssp import run_sssp
from repro.types import Application

NUMPY_METHODS = ("scatter", "reduceat")
METHODS = tuple(
    method
    for method in RELAX_METHODS
    if method != "native" or _native.available()
)


def messy_graph(seed: int, num_vertices: int = 120, num_edges: int = 900):
    """A random directed graph stressing the kernel's edge cases.

    Contains duplicate (parallel) edges with different weights, a block of
    zero-weight edges, and a cluster of vertices with no incident edges at
    all (unreachable components).
    """
    rng = np.random.default_rng(seed)
    reachable = max(8, int(num_vertices * 0.8))  # tail vertices stay isolated
    sources = rng.integers(0, reachable, num_edges)
    destinations = rng.integers(0, reachable, num_edges)
    # Force duplicates: repeat a slice of the edges verbatim (they will get
    # fresh, different weights below).
    dup = num_edges // 8
    sources[-dup:] = sources[:dup]
    destinations[-dup:] = destinations[:dup]
    graph = from_edge_array(
        sources,
        destinations,
        num_vertices=num_vertices,
        directed=True,
        name=f"messy-{seed}",
    )
    weights = rng.uniform(0.05, 2.0, graph.num_edges).astype(np.float32)
    weights[rng.random(graph.num_edges) < 0.1] = 0.0  # zero-weight edges
    return graph.with_weights(weights)


@pytest.fixture(scope="module", params=[11, 29, 47])
def graph(request):
    return messy_graph(request.param)


class TestBitIdentityAcrossBackends:
    @pytest.mark.parametrize("method", METHODS)
    def test_distances_match_solo_runs(self, graph, method):
        rng = np.random.default_rng(5)
        sources = rng.integers(0, graph.num_vertices, 24).tolist()
        batch = run_batch(
            Application.SSSP, graph, sources, relax_method=method
        )
        for result in batch.results:
            solo = run_sssp(graph, result.source)
            assert np.array_equal(result.values, solo.values)
            assert result.metrics.iterations == solo.metrics.iterations

    @pytest.mark.parametrize("lanes", [1, 63, 64, 65])
    def test_word_boundary_lane_counts(self, graph, lanes):
        rng = np.random.default_rng(lanes)
        sources = rng.integers(0, graph.num_vertices, lanes).tolist()
        batch = run_sssp_batch(graph, sources)
        assert batch.num_sources == lanes
        assert batch.num_batches == (lanes + 63) // 64
        # Spot-check first, last, and a word-straddling source.
        for index in {0, lanes - 1, min(lanes - 1, 63)}:
            result = batch.results[index]
            solo = run_sssp(graph, result.source)
            assert np.array_equal(result.values, solo.values)

    def test_methods_agree_with_each_other(self, graph):
        sources = [0, 3, 5, 9, 17]
        outcomes = {
            method: run_batch(
                Application.SSSP, graph, sources, relax_method=method
            )
            for method in METHODS
        }
        baseline = outcomes[METHODS[0]]
        for method, outcome in outcomes.items():
            for a, b in zip(baseline.results, outcome.results):
                assert np.array_equal(a.values, b.values), method

    def test_unweighted_graph_scalar_weights(self):
        rng = np.random.default_rng(3)
        sources_arr = rng.integers(0, 40, 200)
        destinations_arr = rng.integers(0, 40, 200)
        graph = from_edge_array(
            sources_arr, destinations_arr, num_vertices=50, directed=True,
            name="unweighted",
        )
        batch = run_sssp_batch(graph, [0, 7, 21])
        for result in batch.results:
            solo = run_sssp(graph, result.source)
            assert np.array_equal(result.values, solo.values)

    def test_unreachable_component_stays_unreachable(self, graph):
        # Sources inside the isolated tail reach only themselves.
        isolated = graph.num_vertices - 1
        batch = run_sssp_batch(graph, [0, isolated])
        values = batch.results[1].values
        assert values[isolated] == 0.0
        assert np.isinf(np.delete(values, isolated)).all()


class TestKernelUnits:
    def test_active_lane_mask(self):
        bits = np.array([0b101, 0b010], dtype=np.uint64)
        mask = active_lane_mask(bits, 4)
        assert mask.tolist() == [True, True, True, False]
        assert active_lane_mask(np.empty(0, dtype=np.uint64), 3).tolist() == [
            False, False, False,
        ]

    def test_expand_lane_pairs_is_lane_major(self):
        bits = np.array([0b11, 0b10], dtype=np.uint64)
        lanes, positions = expand_lane_pairs(bits, 2)
        assert lanes.tolist() == [0, 1, 1]
        assert positions.tolist() == [0, 0, 1]

    def test_unknown_method_rejected(self):
        values = np.zeros((4, 2))
        with pytest.raises(ValueError, match="unknown relaxation method"):
            relax_lanes(
                values,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.uint64),
                method="bogus",
            )

    def test_non_contiguous_values_rejected(self):
        values = np.zeros((8, 4))[:, ::2]
        with pytest.raises(ValueError, match="C-contiguous"):
            relax_lanes(
                values,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.uint64),
                method="scatter",
            )

    @pytest.mark.parametrize("method", [m for m in METHODS if m in NUMPY_METHODS])
    def test_touched_set_matches_next_bits(self, method):
        # Tiny hand-checked relaxation: vertex 0 relaxes lanes 0 and 1 along
        # one edge to vertex 1; only lane 0 improves (lane 1 already has a
        # better distance at the destination).
        values = np.array(
            [[0.0, 0.0], [np.inf, 0.5], [np.inf, np.inf]], dtype=np.float64
        )
        edges = np.array([1], dtype=np.int64)
        frontier = np.array([0], dtype=np.int64)
        starts = np.array([0], dtype=np.int64)
        ends = np.array([1], dtype=np.int64)
        active = np.array([0b11], dtype=np.uint64)
        weights = np.array([1.0], dtype=np.float64)
        outcome = relax_lanes(
            values, edges, frontier, starts, ends, active,
            weights=weights, method=method,
        )
        assert isinstance(outcome, RelaxOutcome)
        assert outcome.touched.tolist() == [1]
        assert outcome.next_bits[1] == np.uint64(0b01)
        assert values[1].tolist() == [1.0, 0.5]
        assert outcome.lane_edges.tolist() == [1, 1]
        assert outcome.active_lanes.tolist() == [True, True]

    def test_default_method_is_known(self):
        assert default_method() in RELAX_METHODS

    @pytest.mark.parametrize("method", NUMPY_METHODS)
    def test_tiny_blocks_stay_bit_identical(self, monkeypatch, method):
        # Force many blocks per sweep: the blocked execution must not let a
        # later block observe values an earlier block already improved.
        import repro.traversal.relax as relax_module

        monkeypatch.setattr(relax_module, "_BLOCK_PAIRS", 7)
        graph = messy_graph(83, num_vertices=60, num_edges=500)
        batch = run_batch(Application.SSSP, graph, [0, 2, 11], relax_method=method)
        for result in batch.results:
            solo = run_sssp(graph, result.source)
            assert np.array_equal(result.values, solo.values)
            assert result.metrics.iterations == solo.metrics.iterations


class TestSanitizerBuildMode:
    """REPRO_NATIVE_SANITIZE gates the sanitized kernel build (_native)."""

    @pytest.fixture(autouse=True)
    def _fresh_probe(self, monkeypatch, tmp_path):
        # Isolate the shared-object cache and force a re-probe around every
        # test so the session's healthy build is not disturbed.
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        _native.reset_probe()
        yield
        _native.reset_probe()

    def test_build_flags_fold_sanitizer_in(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_SANITIZE", raising=False)
        plain, note = _native._build_flags()
        assert note == ""
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "asan")
        asan, note = _native._build_flags()
        assert note == " [asan]"
        assert "-fsanitize=address" in asan and "-fno-omit-frame-pointer" in asan
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "ubsan")
        ubsan, note = _native._build_flags()
        assert note == " [ubsan]"
        assert "-fsanitize=undefined" in ubsan
        # Different flags -> different cache digests: switching modes can
        # never serve a stale unsanitized object.
        assert len({plain, asan, ubsan}) == 3

    def test_misconfigured_sanitizer_degrades_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "asam")
        assert not _native.available()
        assert "sanitizer misconfigured" in _native.status()
        assert "asam" in _native.status()

    @pytest.mark.skipif(
        not _native.available(), reason="no native backend on this host"
    )
    def test_ubsan_build_stays_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_SANITIZE", "ubsan")
        monkeypatch.setenv("UBSAN_OPTIONS", "halt_on_error=1")
        _native.reset_probe()
        if not _native.available():
            pytest.skip(f"sanitized build unavailable: {_native.status()}")
        assert "[ubsan]" in _native.status()
        graph = messy_graph(7, num_vertices=40, num_edges=260)
        batch = run_batch(Application.SSSP, graph, [0, 3, 9], relax_method="native")
        for result in batch.results:
            solo = run_sssp(graph, result.source)
            assert np.array_equal(result.values, solo.values)
