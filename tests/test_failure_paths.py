"""Failure-path coverage: registry eviction races, cache faults, drain survival."""

import threading

import pytest

from repro.config import ServiceConfig
from repro.errors import ServiceError, UnknownGraphError
from repro.service import (
    FaultPlan,
    GraphRegistry,
    Service,
    TraversalRequest,
)
from repro.service import faults
from repro.service.jobs import JobStatus
from repro.graph.generators import uniform_random_graph
from repro.types import Application


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


def make_graph(name, vertices=200, edges=1000, seed=1):
    return uniform_random_graph(vertices, edges, seed=seed, name=name)


class TestRegistryLoaderFailures:
    def test_loader_raising_during_lru_eviction_pressure(self):
        """A loader failure while the budget forces evictions must leave the
        registry consistent: the resident LRU unharmed, the load election
        cleaned up, and the next get() retrying the loader."""
        graph_a = make_graph("a")
        graph_b = make_graph("b")
        budget = graph_a.total_bytes + graph_b.total_bytes // 2  # b evicts a
        registry = GraphRegistry(budget_bytes=budget)
        registry.register("a", lambda: graph_a)
        attempts = []

        def flaky_b_loader():
            attempts.append(len(attempts))
            if len(attempts) == 1:
                raise ServiceError("storage hiccup during load")
            return graph_b

        registry.register("b", flaky_b_loader)
        assert registry.get("a") is graph_a

        with pytest.raises(ServiceError, match="storage hiccup"):
            registry.get("b")
        # Failed load: "a" still resident, no half-loaded "b", election gone.
        assert registry.resident_names() == ("a",)
        assert "b" not in registry.resident_names()

        # The next get re-elects this thread as loader and succeeds; the
        # byte budget then evicts "a" as usual.
        assert registry.get("b") is graph_b
        assert attempts == [0, 1]
        assert "b" in registry.resident_names()

        stats = registry.stats()
        assert stats.loads == 2  # a + the successful b attempt
        assert stats.evictions == 1

    def test_concurrent_waiters_reelect_after_loader_failure(self):
        graph = make_graph("g")
        first_failed = threading.Event()
        calls = []
        lock = threading.Lock()

        def loader():
            with lock:
                calls.append(threading.get_ident())
                first = len(calls) == 1
            if first:
                first_failed.set()
                raise ServiceError("first loader dies")
            return graph

        registry = GraphRegistry()
        registry.register("g", loader)
        outcomes = []

        def worker():
            try:
                outcomes.append(registry.get("g"))
            except ServiceError:
                outcomes.append(None)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
        # At least one waiter was re-elected and loaded the graph; nobody
        # deadlocked on the dead election event.
        assert graph in outcomes

    def test_unknown_graph_still_raises_cleanly(self):
        registry = GraphRegistry()
        with pytest.raises(UnknownGraphError):
            registry.get("missing")


class TestCacheFaults:
    def test_cache_put_fault_racing_a_failed_job_is_absorbed(self):
        """A cache.put fault must neither fail the succeeding job nor
        corrupt accounting when another job in the drain failed."""
        plan = FaultPlan.from_spec(
            "seed=5;cache.put:transient:n=1:limit=1;worker.task:permanent:source=3"
        )
        config = ServiceConfig(fault_plan=plan)
        with Service(config=config) as service:
            service.registry.register_graph(make_graph("g"))
            jobs = [
                service.submit(
                    TraversalRequest(
                        graph="g", application=Application.BFS, source=s
                    )
                )
                for s in (0, 3)
            ]
            assert service.wait_all(30)
            by_source = {job.request.source: job for job in jobs}
            assert by_source[0].status is JobStatus.DONE
            assert by_source[3].status is JobStatus.FAILED
            stats = service.stats()
            assert stats.cache_errors >= 1
            assert stats.completed == 1 and stats.failed == 1

            # The dropped cache fill means an identical request re-executes
            # rather than being served a phantom entry.
            executions_before = stats.executions
            again = service.submit(
                TraversalRequest(graph="g", application=Application.BFS, source=0)
            )
            assert service.result(again, timeout=30).values is not None
            assert service.stats().executions == executions_before + 1

    def test_cache_get_fault_degrades_to_miss(self):
        plan = FaultPlan.from_spec("cache.get:transient:n=1:limit=1")
        config = ServiceConfig(fault_plan=plan)
        with Service(config=config) as service:
            service.registry.register_graph(make_graph("g"))
            job = service.submit(
                TraversalRequest(graph="g", application=Application.BFS, source=0)
            )
            assert service.result(job, timeout=30).values is not None
            stats = service.stats()
            assert stats.cache_errors == 1
            assert stats.completed == 1


class TestDrainLoopSurvival:
    def test_non_traversal_engine_exception_fails_jobs_not_workers(self):
        """An injected engine raising a non-Repro exception must terminate
        its jobs (no hung waiters) and leave the drain loop serving."""

        calls = []

        def exploding_engine(request, graph):
            calls.append(request.source)
            if request.source == 1:
                raise KeyError("engine bug, not a ReproError")
            from repro.traversal.api import run

            return run(
                request.application, graph, source=request.source,
                strategy=request.strategy, system=request.system,
            )

        with Service(engine=exploding_engine) as service:
            service.registry.register_graph(make_graph("g"))
            bad = service.submit(
                TraversalRequest(graph="g", application=Application.BFS, source=1)
            )
            assert bad.wait(30)
            assert bad.status is JobStatus.FAILED
            assert isinstance(bad.error, KeyError)

            good = service.submit(
                TraversalRequest(graph="g", application=Application.BFS, source=0)
            )
            assert service.result(good, timeout=30).values is not None

    def test_failure_outside_job_isolation_does_not_strand_jobs(self, monkeypatch):
        """If the drain path itself explodes before job-level isolation,
        the catch-all fails the popped jobs instead of stranding them."""
        service = Service()
        service.registry.register_graph(make_graph("g"))

        def exploding_fail_expired(batch):
            raise RuntimeError("scheduler invariant violated")

        monkeypatch.setattr(service, "_fail_expired", exploding_fail_expired)
        job = service.submit(
            TraversalRequest(graph="g", application=Application.BFS, source=0)
        )
        assert job.wait(10), "job must not hang when the drain explodes"
        assert job.status is JobStatus.FAILED
        assert isinstance(job.error, RuntimeError)
        stats = service.stats()
        assert stats.failed == 1

        monkeypatch.undo()
        retry = service.submit(
            TraversalRequest(graph="g", application=Application.BFS, source=2)
        )
        assert service.result(retry, timeout=30).values is not None
        service.close()

    def test_pop_batch_failure_keeps_the_worker_alive(self, monkeypatch):
        service = Service()
        service.registry.register_graph(make_graph("g"))
        original = service._queue.pop_batch
        state = {"raised": False}

        def flaky_pop_batch():
            if not state["raised"]:
                state["raised"] = True
                raise RuntimeError("policy blew up")
            return original()

        monkeypatch.setattr(service._queue, "pop_batch", flaky_pop_batch)
        job = service.submit(
            TraversalRequest(graph="g", application=Application.BFS, source=0)
        )
        # The first wakeup dies picking a batch; the job stays queued.  A
        # subsequent submission's wakeup drains both.
        other = service.submit(
            TraversalRequest(graph="g", application=Application.BFS, source=1)
        )
        assert service.result(job, timeout=30).values is not None
        assert service.result(other, timeout=30).values is not None
        service.close()
