"""Test package for the EMOGI reproduction.

Being a real package lets test modules use ``from .conftest import ...``
helpers (networkx reference conversions) regardless of pytest's import mode.
"""
