"""Tests for the PCIe traffic monitor (the FPGA analog) and the DRAM model."""

import pytest

from repro.config import DRAMConfig
from repro.memsim.coalescer import RequestHistogram
from repro.memsim.dram import DRAMModel
from repro.memsim.monitor import PCIeTrafficMonitor


class TestTrafficMonitor:
    def test_records_request_histograms(self):
        monitor = PCIeTrafficMonitor()
        monitor.record_requests(RequestHistogram.single(128, 4))
        monitor.record_requests(RequestHistogram.single(32, 2))
        assert monitor.total_requests == 6
        assert monitor.zero_copy_bytes == 4 * 128 + 2 * 32
        assert monitor.requests_of_size(128) == 4

    def test_request_size_distribution(self):
        monitor = PCIeTrafficMonitor()
        monitor.record_requests(RequestHistogram({32: 1, 64: 0, 96: 0, 128: 3}))
        distribution = monitor.request_size_distribution()
        assert distribution[128] == pytest.approx(0.75)

    def test_block_transfers(self):
        monitor = PCIeTrafficMonitor()
        monitor.record_block_transfer(4096 * 3, pages=3)
        assert monitor.block_transfer_bytes == 4096 * 3
        assert monitor.block_transfers == 1
        assert monitor.migrated_pages == 3
        assert monitor.total_host_bytes_read == 4096 * 3

    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            PCIeTrafficMonitor().record_block_transfer(-1)

    def test_invalid_size_query_rejected(self):
        with pytest.raises(ValueError):
            PCIeTrafficMonitor().requests_of_size(48)

    def test_combined_host_bytes(self):
        monitor = PCIeTrafficMonitor()
        monitor.record_requests(RequestHistogram.single(128, 1))
        monitor.record_block_transfer(4096)
        assert monitor.total_host_bytes_read == 128 + 4096

    def test_snapshot_is_independent(self):
        monitor = PCIeTrafficMonitor()
        monitor.record_requests(RequestHistogram.single(32, 1))
        snapshot = monitor.snapshot()
        monitor.record_requests(RequestHistogram.single(32, 5))
        assert snapshot.histogram.total_requests == 1
        assert monitor.total_requests == 6

    def test_peak_requests_per_event(self):
        monitor = PCIeTrafficMonitor()
        monitor.record_requests(RequestHistogram.single(32, 10))
        monitor.record_requests(RequestHistogram.single(32, 3))
        assert monitor.peak_requests_per_event == 10

    def test_reset(self):
        monitor = PCIeTrafficMonitor()
        monitor.record_requests(RequestHistogram.single(32, 1))
        monitor.record_block_transfer(100)
        monitor.reset()
        assert monitor.total_requests == 0
        assert monitor.total_host_bytes_read == 0


class TestDRAMModel:
    def test_serve_requests_rounds_to_64(self):
        dram = DRAMModel(DRAMConfig())
        touched = dram.serve_requests(RequestHistogram({32: 4, 64: 0, 96: 2, 128: 1}))
        assert touched == 4 * 64 + 2 * 128 + 1 * 128
        assert dram.bytes_touched == touched

    def test_serve_block(self):
        dram = DRAMModel(DRAMConfig())
        assert dram.serve_block(100) == 128

    def test_negative_block_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel(DRAMConfig()).serve_block(-5)

    def test_seconds_for(self):
        dram = DRAMModel(DRAMConfig(sequential_bandwidth_gbps=10.0))
        assert dram.seconds_for(10e9) == pytest.approx(1.0)

    def test_total_seconds_accumulates(self):
        dram = DRAMModel(DRAMConfig(sequential_bandwidth_gbps=10.0))
        dram.serve_block(10_000_000_000)
        assert dram.total_seconds == pytest.approx(1.0, rel=0.01)

    def test_reset(self):
        dram = DRAMModel(DRAMConfig())
        dram.serve_block(4096)
        dram.reset()
        assert dram.bytes_touched == 0

    def test_32b_requests_waste_half_the_dram_bandwidth(self):
        """§3.3: 32-byte PCIe requests read twice their size from DRAM."""
        dram = DRAMModel(DRAMConfig())
        histogram = RequestHistogram.single(32, 1000)
        touched = dram.serve_requests(histogram)
        assert touched == 2 * histogram.total_bytes
