"""Tests for the PageRank extension."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traversal.pagerank import pagerank_scores, run_pagerank
from repro.types import ALL_STRATEGIES, AccessStrategy

from .conftest import to_networkx


class TestReferencePageRank:
    def test_scores_sum_to_one(self, random_graph):
        scores = pagerank_scores(random_graph)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)
        assert np.all(scores > 0)

    def test_star_center_has_highest_rank(self, star_graph):
        scores = pagerank_scores(star_graph)
        assert int(np.argmax(scores)) == 0

    def test_symmetric_path_is_symmetric(self, path_graph):
        scores = pagerank_scores(path_graph)
        assert scores[0] == pytest.approx(scores[5], rel=1e-4)
        assert scores[1] == pytest.approx(scores[4], rel=1e-4)

    def test_matches_networkx(self, random_graph):
        nx = pytest.importorskip("networkx")
        from repro.graph.builder import from_edge_array

        # networkx collapses parallel edges, so compare on a deduplicated graph.
        simple = from_edge_array(
            random_graph.edge_sources(),
            random_graph.edges,
            num_vertices=random_graph.num_vertices,
            directed=True,
            deduplicate=True,
            name="simple",
        )
        reference = nx.pagerank(to_networkx(simple), alpha=0.85, tol=1e-10)
        scores = pagerank_scores(simple, tolerance=1e-10, max_iterations=200)
        for vertex in range(simple.num_vertices):
            assert scores[vertex] == pytest.approx(reference[vertex], abs=1e-5)

    def test_parameter_validation(self, path_graph):
        with pytest.raises(ConfigurationError):
            pagerank_scores(path_graph, damping=1.5)
        with pytest.raises(ConfigurationError):
            pagerank_scores(path_graph, tolerance=0.0)
        with pytest.raises(ConfigurationError):
            pagerank_scores(path_graph, max_iterations=0)


class TestSimulatedPageRank:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_all_strategies_compute_identical_scores(self, disconnected_graph, strategy):
        reference = pagerank_scores(disconnected_graph)
        result = run_pagerank(disconnected_graph, strategy=strategy)
        assert np.allclose(result.values, reference)

    def test_streams_the_edge_list_every_iteration(self, paper_example_graph):
        result = run_pagerank(paper_example_graph, max_iterations=5, tolerance=1e-30)
        traffic = result.metrics.traffic
        assert result.iterations == 5
        assert traffic.edges_processed == 5 * paper_example_graph.num_edges

    def test_converges_and_reports_it(self, random_graph):
        result = run_pagerank(random_graph, tolerance=1e-4)
        assert result.converged
        assert result.iterations < 100

    def test_top_vertices(self, star_graph):
        result = run_pagerank(star_graph)
        assert result.top_vertices(1).tolist() == [0]
        assert len(result.top_vertices(100)) == star_graph.num_vertices

    def test_emogi_beats_uvm_like_other_streaming_apps(self):
        """On an out-of-memory graph, EMOGI wins for PageRank too (cf. CC, §5.4)."""
        from repro.graph.datasets import load_dataset

        graph = load_dataset("GK")  # default scale: ~2x the simulated GPU memory
        uvm = run_pagerank(graph, strategy=AccessStrategy.UVM, max_iterations=3, tolerance=1e-30)
        emogi = run_pagerank(
            graph, strategy=AccessStrategy.MERGED_ALIGNED, max_iterations=3, tolerance=1e-30
        )
        assert np.allclose(uvm.values, emogi.values)
        assert emogi.seconds < uvm.seconds
