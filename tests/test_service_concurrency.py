"""Acceptance-level concurrency tests: ≥64 mixed requests over ≥2 graphs.

These tests drive the real engine (no stubs) from many client threads at
once, then verify the service's answers against direct single-shot runs and
check that every duplicate submission was absorbed by deduplication or the
result cache rather than re-executed.
"""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.config import ServiceConfig
from repro.service import GraphRegistry, JobStatus, Service, TraversalRequest
from repro.traversal.api import run
from repro.types import AccessStrategy, Application


@pytest.fixture
def service(random_graph, uniform_graph):
    registry = GraphRegistry()
    registry.register_graph(random_graph)
    registry.register_graph(uniform_graph)
    with Service(registry=registry, config=ServiceConfig(max_workers=4)) as service:
        yield service


def mixed_requests(graph_names) -> list[TraversalRequest]:
    """66 unique requests: 16 BFS + 16 SSSP + 1 CC per graph."""
    requests = []
    for name in graph_names:
        for source in range(16):
            requests.append(TraversalRequest(Application.BFS, name, source=source))
            requests.append(
                TraversalRequest(
                    Application.SSSP,
                    name,
                    source=source,
                    strategy=AccessStrategy.MERGED,
                )
            )
        requests.append(TraversalRequest(Application.CC, name))
    return requests


class TestConcurrentMixedWorkload:
    def test_64_plus_concurrent_requests_across_two_graphs(
        self, service, random_graph, uniform_graph
    ):
        graphs = {g.name: g for g in (random_graph, uniform_graph)}
        unique = mixed_requests(graphs)
        duplicates = unique[::4]  # every 4th request submitted twice
        workload = unique + duplicates
        assert len(workload) >= 64

        with ThreadPoolExecutor(max_workers=16) as clients:
            jobs = list(clients.map(service.submit, workload))
        assert service.wait_all(timeout=120)

        assert all(job.status is JobStatus.DONE for job in jobs)
        stats = service.stats()
        # every unique request executed exactly once; every duplicate was
        # absorbed by the in-flight dedup window or the result cache
        assert stats.executions == len(unique)
        assert stats.deduplicated + stats.cache.hits == len(duplicates)
        assert stats.submitted == len(workload)
        assert stats.completed == len(workload) - stats.deduplicated
        assert stats.failed == 0

        # duplicate submissions observe the exact same result object
        by_key = {}
        for job in jobs:
            existing = by_key.setdefault(job.request.cache_key, job.result)
            assert existing is job.result

        # spot-check answers against direct single-shot runs
        for job in jobs[:: len(jobs) // 8]:
            request = job.request
            direct = run(
                request.application,
                graphs[request.graph],
                source=request.source,
                strategy=request.strategy,
                system=request.system,
            )
            assert np.array_equal(job.result.values, direct.values)

    def test_concurrent_duplicates_of_one_request_collapse(
        self, service, random_graph
    ):
        request = TraversalRequest(Application.BFS, random_graph.name, source=0)
        with ThreadPoolExecutor(max_workers=16) as clients:
            jobs = list(clients.map(service.submit, [request] * 64))
        assert service.wait_all(timeout=60)
        stats = service.stats()
        assert stats.executions == 1
        assert stats.deduplicated + stats.cache.hits == 63
        results = {id(job.result) for job in jobs}
        assert len(results) == 1

    def test_eviction_pressure_during_concurrent_traffic(
        self, random_graph, uniform_graph
    ):
        budget = max(random_graph.total_bytes, uniform_graph.total_bytes) + 1
        registry = GraphRegistry(budget_bytes=budget)
        registry.register_graph(random_graph)
        registry.register_graph(uniform_graph)
        config = ServiceConfig(max_workers=4, registry_budget_bytes=budget)
        with Service(registry=registry, config=config) as service:
            requests = mixed_requests([random_graph.name, uniform_graph.name])
            with ThreadPoolExecutor(max_workers=8) as clients:
                jobs = list(clients.map(service.submit, requests))
            assert service.wait_all(timeout=120)
            assert all(job.status is JobStatus.DONE for job in jobs)
            stats = service.stats()
        assert stats.registry.resident_graphs == 1
        assert stats.registry.resident_bytes <= budget
        assert stats.registry.evictions >= 1
        assert stats.failed == 0
