"""Tests for the traversal engine: memory placement and traffic invariants."""

import numpy as np
import pytest

from repro.config import default_system
from repro.errors import SimulationError
from repro.traversal.engine import TraversalEngine
from repro.types import AccessStrategy, MemorySpace


@pytest.fixture
def frontier(uniform_graph):
    return np.arange(0, uniform_graph.num_vertices, 3)


class TestMemoryPlacement:
    def test_zero_copy_places_edges_in_pinned_host_memory(self, uniform_graph):
        engine = TraversalEngine(uniform_graph, AccessStrategy.MERGED_ALIGNED)
        assert engine.edge_allocation.space is MemorySpace.HOST_PINNED
        assert engine.edge_region is not None
        assert engine.edge_uvm is None

    def test_uvm_places_edges_in_uvm_space(self, uniform_graph):
        engine = TraversalEngine(uniform_graph, AccessStrategy.UVM)
        assert engine.edge_allocation.space is MemorySpace.UVM
        assert engine.edge_uvm is not None
        assert engine.edge_region is None

    def test_vertex_list_and_values_stay_in_device_memory(self, uniform_graph):
        engine = TraversalEngine(uniform_graph, AccessStrategy.MERGED_ALIGNED)
        assert engine.address_space.get("vertex_list").space is MemorySpace.DEVICE
        assert engine.address_space.get("vertex_values").space is MemorySpace.DEVICE
        assert engine.device.allocated_bytes > 0

    def test_weights_allocated_when_requested(self, weighted_uniform_graph):
        engine = TraversalEngine(
            weighted_uniform_graph, AccessStrategy.MERGED_ALIGNED, needs_weights=True
        )
        assert engine.weight_allocation is not None
        assert engine.dataset_bytes == (
            weighted_uniform_graph.edge_list_bytes
            + weighted_uniform_graph.weight_list_bytes
        )

    def test_weights_ignored_for_unweighted_graph(self, uniform_graph):
        engine = TraversalEngine(uniform_graph, AccessStrategy.UVM, needs_weights=True)
        assert engine.weight_allocation is None

    def test_dataset_bytes_without_weights(self, uniform_graph):
        engine = TraversalEngine(uniform_graph, AccessStrategy.NAIVE)
        assert engine.dataset_bytes == uniform_graph.edge_list_bytes


class TestFrontierProcessing:
    def test_empty_frontier_costs_nothing_but_counts_an_iteration(self, uniform_graph):
        engine = TraversalEngine(uniform_graph, AccessStrategy.MERGED_ALIGNED)
        breakdown = engine.process_frontier(np.array([], dtype=np.int64))
        assert breakdown.total() == 0.0
        assert engine.iterations == 1

    def test_invalid_frontier_rejected(self, uniform_graph):
        engine = TraversalEngine(uniform_graph, AccessStrategy.MERGED_ALIGNED)
        with pytest.raises(SimulationError):
            engine.process_frontier(np.array([uniform_graph.num_vertices]))

    def test_edges_processed_accounting(self, uniform_graph, frontier):
        engine = TraversalEngine(uniform_graph, AccessStrategy.MERGED_ALIGNED)
        engine.process_frontier(frontier)
        expected_edges = int(
            (uniform_graph.offsets[frontier + 1] - uniform_graph.offsets[frontier]).sum()
        )
        assert engine.traffic.edges_processed == expected_edges
        assert engine.traffic.vertices_processed == frontier.size
        assert engine.traffic.kernel_launches == 1
        assert engine.kernels.num_launches == 1

    def test_each_iteration_adds_time(self, uniform_graph, frontier):
        engine = TraversalEngine(uniform_graph, AccessStrategy.MERGED_ALIGNED)
        engine.process_frontier(frontier)
        first = engine.breakdown.total()
        engine.process_frontier(frontier)
        assert engine.breakdown.total() > first


class TestTrafficInvariants:
    def run_all(self, graph, frontier):
        results = {}
        for strategy in AccessStrategy:
            engine = TraversalEngine(graph, strategy)
            engine.process_frontier(frontier)
            results[strategy] = engine
        return results

    def test_merged_reduces_requests_and_alignment_reduces_further(
        self, uniform_graph, frontier
    ):
        engines = self.run_all(uniform_graph, frontier)
        naive = engines[AccessStrategy.NAIVE].traffic.request_histogram.total_requests
        merged = engines[AccessStrategy.MERGED].traffic.request_histogram.total_requests
        aligned = engines[
            AccessStrategy.MERGED_ALIGNED
        ].traffic.request_histogram.total_requests
        assert merged < naive
        assert aligned <= merged

    def test_zero_copy_bytes_cover_useful_bytes(self, uniform_graph, frontier):
        engines = self.run_all(uniform_graph, frontier)
        for strategy in (
            AccessStrategy.NAIVE,
            AccessStrategy.MERGED,
            AccessStrategy.MERGED_ALIGNED,
        ):
            traffic = engines[strategy].traffic
            assert traffic.zero_copy_bytes >= traffic.useful_bytes

    def test_uvm_traffic_is_page_granular(self, uniform_graph, frontier):
        engine = TraversalEngine(uniform_graph, AccessStrategy.UVM)
        engine.process_frontier(frontier)
        traffic = engine.traffic
        page = default_system().uvm.page_bytes
        assert traffic.uvm_migrated_bytes % page == 0
        assert traffic.uvm_migrated_bytes >= traffic.useful_bytes
        assert traffic.request_histogram.total_requests == 0

    def test_naive_generates_only_32b_requests(self, uniform_graph, frontier):
        engine = TraversalEngine(uniform_graph, AccessStrategy.NAIVE)
        engine.process_frontier(frontier)
        histogram = engine.traffic.request_histogram
        assert histogram.counts[32] == histogram.total_requests

    def test_aligned_produces_more_full_lines_than_merged(self, uniform_graph, frontier):
        engines = self.run_all(uniform_graph, frontier)
        merged = engines[AccessStrategy.MERGED].traffic.request_histogram
        aligned = engines[AccessStrategy.MERGED_ALIGNED].traffic.request_histogram
        assert aligned.fraction(128) >= merged.fraction(128)

    def test_monitor_sees_zero_copy_traffic(self, uniform_graph, frontier):
        engine = TraversalEngine(uniform_graph, AccessStrategy.MERGED_ALIGNED)
        engine.process_frontier(frontier)
        assert engine.monitor.total_requests == (
            engine.traffic.request_histogram.total_requests
        )

    def test_finalize_metrics(self, uniform_graph, frontier):
        engine = TraversalEngine(uniform_graph, AccessStrategy.MERGED_ALIGNED)
        engine.process_frontier(frontier)
        metrics = engine.finalize()
        assert metrics.seconds == pytest.approx(engine.breakdown.total())
        assert metrics.iterations == 1
        assert metrics.strategy is AccessStrategy.MERGED_ALIGNED
        assert metrics.dataset_bytes == uniform_graph.edge_list_bytes


class TestWeightedTraffic:
    def test_sssp_weight_traffic_uses_4_byte_elements(self, weighted_uniform_graph):
        frontier = np.arange(0, weighted_uniform_graph.num_vertices, 5)
        engine = TraversalEngine(
            weighted_uniform_graph, AccessStrategy.MERGED_ALIGNED, needs_weights=True
        )
        engine.process_frontier(frontier)
        edges = int(
            (
                weighted_uniform_graph.offsets[frontier + 1]
                - weighted_uniform_graph.offsets[frontier]
            ).sum()
        )
        assert engine.traffic.useful_bytes == edges * (
            weighted_uniform_graph.element_bytes + 4
        )

    def test_uvm_weight_region_shares_page_cache(self, weighted_uniform_graph):
        engine = TraversalEngine(
            weighted_uniform_graph, AccessStrategy.UVM, needs_weights=True
        )
        assert engine.weight_uvm is not None
        total_capacity = engine.device.page_cache_capacity(
            default_system().uvm.page_bytes
        )
        assert (
            engine.edge_uvm.capacity_pages + engine.weight_uvm.capacity_pages
            <= total_capacity
        )
