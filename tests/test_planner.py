"""Tests for the cost-model-driven fusion planner.

Two layers: :class:`FusionPlanner` unit tests on synthetic backlog
snapshots (candidate enumeration, ≤64-lane bin-packing, the confidence
gate), and property-style end-to-end tests asserting the PR's core
invariant — every result a planner-fused drain produces is bit-identical
to the same request run solo, including under seeded lane poisoning.
"""

import itertools

import numpy as np
import pytest

from repro.config import ServiceConfig, ampere_pcie4
from repro.errors import PermanentFaultError
from repro.graph.generators import uniform_random_graph
from repro.service import FaultPlan, Service, TraversalRequest
from repro.service import faults
from repro.service.costmodel import CostModel
from repro.service.jobs import Job, JobStatus
from repro.service.planner import MAX_LANES, FusionPlan, FusionPlanner
from repro.traversal.api import run
from repro.types import AccessStrategy, Application


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.deactivate()
    yield
    faults.deactivate()


_ids = itertools.count()


def make_jobs(application, graph="g", count=1, strategy="merged_aligned", **kwargs):
    return [
        Job(
            job_id=f"job-{next(_ids)}",
            request=TraversalRequest(
                application,
                graph,
                source=None if Application(application).is_streaming else index,
                strategy=strategy,
                **kwargs,
            ),
        )
        for index in range(count)
    ]


def snapshot_of(*groups):
    return {group[0].request.batch_key: tuple(group) for group in groups}


class TestPlannerUnit:
    def test_no_riders_yields_baseline(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("bfs", count=3)
        plan, rider_keys = planner.build(anchor, snapshot_of(anchor))
        assert rider_keys == []
        assert plan.kind == "multisource"
        assert not plan.fused
        assert plan.jobs == anchor

    def test_single_job_anchor_is_solo(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("bfs", count=1)
        plan, _ = planner.build(anchor, snapshot_of(anchor))
        assert plan.kind == "solo"
        assert plan.shape == "solo:1x1"

    def test_packs_same_app_same_graph_configs(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("bfs", count=4)
        rider_a = make_jobs("bfs", count=2, strategy="uvm")
        rider_b = make_jobs("bfs", count=3, strategy="naive")
        plan, rider_keys = planner.build(
            anchor, snapshot_of(anchor, rider_a, rider_b)
        )
        assert plan.kind == "packed"
        assert plan.fused
        assert plan.lanes == 9
        assert set(rider_keys) == {
            rider_a[0].request.batch_key,
            rider_b[0].request.batch_key,
        }
        # Anchor group always leads; riders pack smallest-first.
        assert plan.groups[0] == anchor
        assert [len(group) for group in plan.groups] == [4, 2, 3]

    def test_incompatible_riders_excluded(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("bfs", count=2)
        other_graph = make_jobs("bfs", graph="h", count=2, strategy="uvm")
        other_app = make_jobs("sssp", count=2, strategy="uvm")
        plan, rider_keys = planner.build(
            anchor, snapshot_of(anchor, other_graph, other_app)
        )
        assert rider_keys == []
        assert plan.kind == "multisource"

    def test_bin_pack_respects_word_width(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("bfs", count=MAX_LANES - 3)
        small = make_jobs("bfs", count=2, strategy="uvm")
        big = make_jobs("bfs", count=10, strategy="naive")
        plan, rider_keys = planner.build(anchor, snapshot_of(anchor, small, big))
        assert rider_keys == [small[0].request.batch_key]
        assert plan.lanes == MAX_LANES - 1
        assert plan.lanes <= MAX_LANES

    def test_full_anchor_packs_nothing(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("bfs", count=MAX_LANES)
        rider = make_jobs("bfs", count=1, strategy="uvm")
        plan, rider_keys = planner.build(anchor, snapshot_of(anchor, rider))
        assert rider_keys == []
        assert plan.kind == "multisource"

    def test_streaming_takes_every_compatible_group(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("cc")
        rider_a = make_jobs("cc", strategy="uvm")
        rider_b = make_jobs("cc", strategy="naive")
        plan, rider_keys = planner.build(
            anchor, snapshot_of(anchor, rider_a, rider_b)
        )
        assert plan.kind == "streaming"
        assert len(rider_keys) == 2
        # Streaming lanes are per group, not per job.
        assert plan.lanes == 3
        assert plan.shape == "streaming:3x3"

    def test_pagerank_groups_stream_like_cc(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("pagerank")
        rider = make_jobs("pagerank", strategy="uvm")
        plan, rider_keys = planner.build(anchor, snapshot_of(anchor, rider))
        assert plan.kind == "streaming"
        assert rider_keys == [rider[0].request.batch_key]

    def test_untrained_model_fuses_by_default(self):
        # Zero samples means zero error margin: the shared estimate beats the
        # solo sum on bootstrap priors alone, preserving the historical
        # fuse-whenever-compatible behavior until the model learns better.
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("bfs", count=2)
        rider = make_jobs("bfs", count=2, strategy="uvm")
        plan, _ = planner.build(anchor, snapshot_of(anchor, rider))
        assert plan.kind == "packed"
        assert plan.estimate is not None
        assert plan.estimate.confident
        assert plan.candidates_built == 2
        assert plan.candidates_rejected == 1

    def test_noisy_model_rejects_fusion(self):
        # One wildly mispredicted observation inflates the model's mean abs
        # error past any predictable saving: the gate must fall back solo.
        model = CostModel()
        anchor = make_jobs("bfs", count=2)
        rider = make_jobs("bfs", count=2, strategy="uvm")
        model.observe(anchor[0].request.batch_key, 2, 100.0)
        planner = FusionPlanner(model)
        plan, rider_keys = planner.build(anchor, snapshot_of(anchor, rider))
        assert rider_keys == []
        assert plan.kind == "multisource"
        assert plan.candidates_built == 2
        assert plan.candidates_rejected == 1

    def test_accurate_model_restores_confidence(self):
        model = CostModel()
        anchor = make_jobs("bfs", count=2)
        rider = make_jobs("bfs", count=2, strategy="uvm")
        for _ in range(100):  # EWMA converges, per-observation error -> 0
            model.observe(anchor[0].request.batch_key, 2, 0.5)
            model.observe(rider[0].request.batch_key, 2, 0.5)
        planner = FusionPlanner(model)
        plan, _ = planner.build(anchor, snapshot_of(anchor, rider))
        assert plan.kind == "packed"
        assert plan.estimate.savings_seconds > 0

    def test_restrict_drops_unclaimed_riders(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("bfs", count=2)
        rider_a = make_jobs("bfs", count=1, strategy="uvm")
        rider_b = make_jobs("bfs", count=1, strategy="naive")
        plan, rider_keys = planner.build(
            anchor, snapshot_of(anchor, rider_a, rider_b)
        )
        key_a = rider_a[0].request.batch_key
        plan.restrict({key_a: list(rider_a)})
        assert plan.rider_keys == [key_a]
        assert plan.groups == [anchor, rider_a]
        assert plan.kind == "packed"

    def test_restrict_to_anchor_degrades_to_baseline(self):
        planner = FusionPlanner(CostModel())
        anchor = make_jobs("cc")
        rider = make_jobs("cc", strategy="uvm")
        plan, _ = planner.build(anchor, snapshot_of(anchor, rider))
        plan.restrict({})
        assert plan.kind == "streaming"
        assert not plan.fused
        assert plan.estimate is None

        anchor = make_jobs("bfs", count=1)
        rider = make_jobs("bfs", count=1, strategy="uvm")
        plan, _ = planner.build(anchor, snapshot_of(anchor, rider))
        assert plan.kind == "packed"
        plan.restrict({})
        assert plan.kind == "solo"


# --------------------------------------------------------------------- #
# End-to-end bit-identity properties
# --------------------------------------------------------------------- #

def make_graph(name="plannergraph", vertices=300, edges=1800, seed=9):
    return uniform_random_graph(vertices, edges, seed=seed, name=name)


def enqueue_without_draining(service, requests):
    """Submit without dispatching workers so fused backlogs form reliably."""
    original = service._pool.submit
    service._pool.submit = lambda fn, *a, **k: None
    try:
        return [service.submit(request) for request in requests]
    finally:
        service._pool.submit = original


def drain_all(service, max_drains=100):
    for _ in range(max_drains):
        if service._queue.pending_count() == 0:
            return
        service._drain_one_batch()
    raise AssertionError("queue did not drain")


def mixed_backlog(graph_name):
    """A backlog exercising every plan kind the planner can emit."""
    requests = []
    for strategy in ("merged_aligned", "uvm", "naive"):
        requests += [
            TraversalRequest("bfs", graph_name, source=s, strategy=strategy)
            for s in range(3)
        ]
    requests += [
        TraversalRequest("sssp", graph_name, source=s, strategy=strategy)
        for strategy in ("merged_aligned", "merged")
        for s in (5, 6)
    ]
    requests += [
        TraversalRequest("cc", graph_name, strategy=strategy)
        for strategy in ("merged_aligned", "uvm", "naive")
    ]
    requests += [
        TraversalRequest("pagerank", graph_name, strategy=strategy)
        for strategy in ("merged_aligned", "uvm")
    ]
    requests.append(
        TraversalRequest("bfs", graph_name, source=7, system=ampere_pcie4())
    )
    return requests


class TestPlannedDrainBitIdentity:
    def test_mixed_backlog_results_identical_to_solo_runs(self):
        graph = make_graph()
        with Service(config=ServiceConfig()) as service:
            service.registry.register_graph(graph)
            requests = mixed_backlog(graph.name)
            jobs = enqueue_without_draining(service, requests)
            drain_all(service)

            assert all(job.status is JobStatus.DONE for job in jobs)
            for job in jobs:
                request = job.request
                solo = run(
                    request.application,
                    graph,
                    source=request.source,
                    strategy=request.strategy,
                    system=request.system,
                )
                assert np.array_equal(job.result.values, solo.values), (
                    f"planned result diverged for {request.describe()}"
                )
            decisions = service.plan_decisions()
            assert decisions, "planner must log every drain decision"
            fused = [entry for entry in decisions if entry["groups"] > 1]
            assert fused, "mixed compatible backlog must produce fused plans"
            assert "packed" in {entry["kind"] for entry in fused}
            for entry in decisions:
                assert entry["lanes"] <= MAX_LANES or entry["kind"] == "streaming"
                assert entry["actual_seconds"] >= 0

    def test_streaming_backlog_fuses_across_configs(self):
        # A fresh model (zero error margin) must fuse compatible streaming
        # groups; every lane's values stay bit-identical to its solo run.
        graph = make_graph()
        with Service(config=ServiceConfig()) as service:
            service.registry.register_graph(graph)
            requests = [
                TraversalRequest("cc", graph.name, strategy=strategy)
                for strategy in ("merged_aligned", "uvm", "naive")
            ]
            jobs = enqueue_without_draining(service, requests)
            drain_all(service)

            assert all(job.status is JobStatus.DONE for job in jobs)
            for job in jobs:
                solo = run("cc", graph, strategy=job.request.strategy)
                assert np.array_equal(job.result.values, solo.values)
            fused = [
                entry for entry in service.plan_decisions() if entry["groups"] > 1
            ]
            assert fused and fused[0]["kind"] == "streaming"
            assert fused[0]["groups"] == 3

    def test_planner_off_matches_planner_on(self):
        graph = make_graph()
        values = {}
        for planner in (True, False):
            with Service(config=ServiceConfig(planner=planner)) as service:
                service.registry.register_graph(graph)
                jobs = enqueue_without_draining(service, mixed_backlog(graph.name))
                drain_all(service)
                assert all(job.status is JobStatus.DONE for job in jobs)
                for job in jobs:
                    values.setdefault(job.request.cache_key, []).append(
                        job.result.values
                    )
                if not planner:
                    assert not any(
                        entry["groups"] > 1 for entry in service.plan_decisions()
                    )
        for cache_key, (on, off) in values.items():
            assert np.array_equal(on, off), cache_key

    def test_poisoned_packed_lane_fails_alone_bit_identically(self):
        plan = FaultPlan.from_spec("seed=17;worker.task:permanent:source=2")
        graph = make_graph()
        config = ServiceConfig(fault_plan=plan)
        with Service(config=config) as service:
            service.registry.register_graph(graph)
            requests = [
                TraversalRequest("bfs", graph.name, source=s, strategy=strategy)
                for strategy in ("merged_aligned", "uvm")
                for s in range(4)
            ]
            jobs = enqueue_without_draining(service, requests)
            drain_all(service)

            assert all(job.done for job in jobs)
            poisoned = [job for job in jobs if job.request.source == 2]
            healthy = [job for job in jobs if job.request.source != 2]
            assert len(poisoned) == 2
            for job in poisoned:
                assert job.status is JobStatus.FAILED
                assert isinstance(job.error, PermanentFaultError)
            for job in healthy:
                assert job.status is JobStatus.DONE
                solo = run(
                    "bfs", graph, source=job.request.source,
                    strategy=job.request.strategy,
                )
                assert np.array_equal(job.result.values, solo.values)
            assert service.stats().isolations >= 1

    def test_poisoned_streaming_rider_fails_alone(self):
        plan = FaultPlan.from_spec("seed=23;worker.task:permanent:tenant=poison")
        graph = make_graph()
        with Service(config=ServiceConfig(fault_plan=plan)) as service:
            service.registry.register_graph(graph)
            requests = [
                TraversalRequest(
                    "pagerank", graph.name, strategy="merged_aligned",
                    tenant="poison",
                ),
                TraversalRequest("pagerank", graph.name, strategy="uvm", tenant="ok"),
            ]
            jobs = enqueue_without_draining(service, requests)
            drain_all(service)

            assert jobs[0].status is JobStatus.FAILED
            assert isinstance(jobs[0].error, PermanentFaultError)
            assert jobs[1].status is JobStatus.DONE
            solo = run("pagerank", graph, strategy=AccessStrategy.UVM)
            assert np.array_equal(jobs[1].result.values, solo.values)
            assert service.stats().isolations >= 1
