"""The repo-invariant lint engine (repro.analysis) and its CLI surface."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import LintConfig, LintEngine, default_config, lint_tree
from repro.cli import main
from repro.hotpath import hot_path


def lint(source: str, config: LintConfig | None = None, path: str = "mod.py"):
    engine = LintEngine(config if config is not None else default_config())
    return engine.lint_source(textwrap.dedent(source), path)


def rules_of(findings):
    return [finding.rule for finding in findings]


class TestHotPathDecorator:
    def test_marker_attribute(self):
        @hot_path
        def kernel():
            pass

        assert kernel.__repro_hot_path__ is True


class TestHotPathAllocRule:
    def test_allocation_in_decorated_function_flagged(self):
        findings = lint(
            """
            import numpy as np
            from repro.hotpath import hot_path

            @hot_path
            def kernel(n):
                return np.zeros(n)
            """
        )
        assert rules_of(findings) == ["REPRO101"]
        assert "np.zeros" in findings[0].message

    def test_allowlisted_function_flagged_without_decorator(self):
        findings = lint(
            """
            import numpy as np

            def relax_lanes(n):
                return np.empty(n)
            """,
            path="src/repro/traversal/relax.py",
        )
        assert rules_of(findings) == ["REPRO101"]

    def test_cold_function_not_flagged(self):
        findings = lint(
            """
            import numpy as np

            def setup(n):
                return np.zeros(n)
            """
        )
        assert findings == []

    def test_list_append_loop_flagged(self):
        findings = lint(
            """
            from repro.hotpath import hot_path

            @hot_path
            def kernel(edges):
                out = []
                for e in edges:
                    out.append(e)
                return out
            """
        )
        assert rules_of(findings) == ["REPRO101"]

    def test_noqa_with_justification_suppresses(self):
        findings = lint(
            """
            import numpy as np
            from repro.hotpath import hot_path

            @hot_path
            def kernel(lanes):
                return np.zeros(lanes)  # repro: noqa[REPRO101] — O(lanes) <= 64
            """
        )
        assert findings == []


class TestBareAcquireRule:
    def test_bare_acquire_flagged(self):
        findings = lint(
            """
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self):
                    self._lock.acquire()
                    self._lock.release()
            """
        )
        assert rules_of(findings) == ["REPRO102", "REPRO102"]

    def test_with_statement_clean(self):
        findings = lint(
            """
            import threading

            class Thing:
                def __init__(self):
                    self._lock = threading.Lock()

                def good(self):
                    with self._lock:
                        pass
            """
        )
        assert findings == []

    def test_non_lock_acquire_not_flagged(self):
        # EngineArena.acquire leases engines; only tracked lock names count.
        findings = lint(
            """
            def lease(arena, graph):
                return arena.acquire(graph)
            """
        )
        assert findings == []


class TestTimingMixRule:
    def test_mixed_clocks_in_one_function_flagged(self):
        findings = lint(
            """
            import time

            def measure():
                start = time.perf_counter()
                stamp = time.time()
                return stamp, time.perf_counter() - start
            """
        )
        assert rules_of(findings) == ["REPRO103"]

    def test_separate_functions_clean(self):
        findings = lint(
            """
            import time

            def wall():
                return time.time()

            def elapsed(start):
                return time.perf_counter() - start
            """
        )
        assert findings == []

    def test_timing_module_exempt(self):
        findings = lint(
            """
            import time

            def wall_clock_pair():
                return time.time(), time.perf_counter()
            """,
            path="src/repro/timing.py",
        )
        assert findings == []


class TestRawEnvFlagRule:
    def test_raw_repro_read_flagged(self):
        findings = lint(
            """
            import os

            def switched_off():
                return os.environ.get("REPRO_NATIVE") == "0"
            """
        )
        assert rules_of(findings) == ["REPRO104"]

    def test_getenv_and_subscript_flagged(self):
        findings = lint(
            """
            import os

            def reads():
                return os.getenv("REPRO_TRACE"), os.environ["REPRO_FAULTS"]
            """
        )
        assert rules_of(findings) == ["REPRO104", "REPRO104"]

    def test_non_repro_names_clean(self):
        findings = lint(
            """
            import os

            def cache_home():
                return os.environ.get("XDG_CACHE_HOME")
            """
        )
        assert findings == []

    def test_envflags_module_exempt(self):
        findings = lint(
            """
            import os

            def env_flag(name):
                return os.environ.get("REPRO_" + "X")
            """,
            path="src/repro/envflags.py",
        )
        assert findings == []


class TestFaultSiteRule:
    def test_unregistered_site_flagged(self):
        findings = lint(
            """
            from repro.service import faults

            def sweep():
                faults.check("engine.bogus_site")
            """
        )
        assert rules_of(findings) == ["REPRO105"]
        assert "engine.bogus_site" in findings[0].message

    def test_registered_site_clean(self):
        findings = lint(
            """
            from repro.service import faults

            def sweep():
                faults.check("engine.sweep")
            """
        )
        assert findings == []


class TestMetricNameRule:
    def test_unregistered_metric_flagged(self):
        findings = lint(
            """
            def init(registry):
                registry.counter("repro_bogus_total", "mystery series")
            """
        )
        assert rules_of(findings) == ["REPRO106"]
        assert "repro_bogus_total" in findings[0].message

    def test_registered_metric_clean(self):
        findings = lint(
            """
            def init(registry):
                registry.counter("repro_requests_submitted_total", "submissions")
            """
        )
        assert findings == []


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        findings = lint("def broken(:\n    pass\n")
        assert rules_of(findings) == ["REPRO000"]

    def test_bare_noqa_suppresses_every_rule(self):
        findings = lint(
            """
            import os

            def reads():
                return os.getenv("REPRO_TRACE")  # repro: noqa
            """
        )
        assert findings == []

    def test_shipped_tree_is_clean(self):
        report = lint_tree()
        assert report.clean, report.format()
        assert report.files_checked > 50

    def test_report_json_round_trip(self):
        report = lint_tree()
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["findings"] == []
        assert payload["files_checked"] == report.files_checked


class TestCLI:
    def test_lint_clean_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "seeded.py"
        bad.write_text(
            textwrap.dedent(
                """
                import os

                def switched():
                    return os.environ.get("REPRO_NATIVE")
                """
            )
        )
        assert main(["lint", str(bad)]) == 1
        assert "REPRO104" in capsys.readouterr().out

    def test_json_output_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "lint.json"
        assert main(["lint", "--format", "json", "--output", str(artifact)]) == 0
        payload = json.loads(artifact.read_text())
        assert payload["findings"] == []
        capsys.readouterr()


@pytest.mark.parametrize(
    "snippet,expected_rule",
    [
        # One seeded violation per rule class, as the acceptance criteria
        # require `repro.cli lint` to fail on.
        (
            """
            import numpy as np
            from repro.hotpath import hot_path

            @hot_path
            def kernel(n):
                return np.concatenate((n, n))
            """,
            "REPRO101",
        ),
        (
            """
            import threading

            class T:
                def __init__(self):
                    self._lock = threading.Lock()

                def bad(self):
                    self._lock.acquire()
            """,
            "REPRO102",
        ),
        (
            """
            from repro.service import faults

            def f():
                faults.check("nope.nope")
            """,
            "REPRO105",
        ),
        (
            """
            def f(registry):
                registry.gauge("repro_not_a_series", "bogus")
            """,
            "REPRO106",
        ),
        (
            """
            import os

            def f():
                return os.environ.get("REPRO_LOCKCHECK")
            """,
            "REPRO104",
        ),
    ],
)
def test_cli_fails_on_each_seeded_rule_class(tmp_path, capsys, snippet, expected_rule):
    seeded = tmp_path / "seeded.py"
    seeded.write_text(textwrap.dedent(snippet))
    assert main(["lint", str(seeded)]) == 1
    assert expected_rule in capsys.readouterr().out
