"""Tests for the public traversal API (dispatch, aggregation)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traversal.api import bfs, cc, run, run_average, sssp
from repro.traversal.bfs import bfs_levels
from repro.types import AccessStrategy, Application, EMOGI_STRATEGY


class TestDispatch:
    def test_bfs(self, random_graph):
        result = bfs(random_graph, 0)
        assert result.application is Application.BFS
        assert result.strategy is EMOGI_STRATEGY
        assert np.array_equal(result.values, bfs_levels(random_graph, 0))

    def test_sssp(self, random_graph):
        result = sssp(random_graph, 0)
        assert result.application is Application.SSSP
        assert result.values[0] == 0.0

    def test_cc(self, disconnected_graph):
        result = cc(disconnected_graph)
        assert result.application is Application.CC

    def test_run_accepts_strings(self, random_graph):
        result = run("bfs", random_graph, source=0)
        assert result.application is Application.BFS

    def test_run_dispatches_cc_without_source(self, disconnected_graph):
        result = run(Application.CC, disconnected_graph)
        assert result.application is Application.CC

    def test_run_requires_source_for_bfs_and_sssp(self, random_graph):
        with pytest.raises(ConfigurationError):
            run(Application.BFS, random_graph)
        with pytest.raises(ConfigurationError):
            run("sssp", random_graph)

    def test_unknown_application_rejected(self, random_graph):
        with pytest.raises(ValueError):
            run("katz", random_graph, source=0)

    def test_strategy_parameter_respected(self, random_graph):
        result = bfs(random_graph, 0, strategy=AccessStrategy.UVM)
        assert result.strategy is AccessStrategy.UVM
        assert result.metrics.traffic.uvm_migrated_bytes > 0


class TestRunAverage:
    def test_bfs_average_over_sources(self, random_graph):
        aggregate = run_average(Application.BFS, random_graph, [0, 1, 2])
        assert aggregate.num_runs == 3
        assert aggregate.mean_seconds > 0
        assert {r.source for r in aggregate.runs} == {0, 1, 2}

    def test_cc_runs_once_regardless_of_sources(self, disconnected_graph):
        aggregate = run_average(Application.CC, disconnected_graph, [0, 1, 2, 3])
        assert aggregate.num_runs == 1

    def test_aggregate_metadata(self, random_graph):
        aggregate = run_average("sssp", random_graph, [4], strategy=AccessStrategy.MERGED)
        assert aggregate.application is Application.SSSP
        assert aggregate.graph_name == random_graph.name
        assert aggregate.strategy is AccessStrategy.MERGED


class TestRunAverageEdgeCases:
    def test_empty_sources_rejected_for_sourced_apps(self, random_graph):
        with pytest.raises(ConfigurationError):
            run_average(Application.BFS, random_graph, [])
        with pytest.raises(ConfigurationError):
            run_average("sssp", random_graph, np.array([], dtype=np.int64))

    def test_cc_runs_once_even_with_empty_sources(self, disconnected_graph):
        aggregate = run_average(Application.CC, disconnected_graph, [])
        assert aggregate.num_runs == 1

    def test_cc_ignores_source_values_entirely(self, disconnected_graph):
        a = run_average(Application.CC, disconnected_graph, [0, 1, 2])
        b = run_average(Application.CC, disconnected_graph, [99999])  # out of range
        assert a.num_runs == b.num_runs == 1
        assert np.array_equal(a.runs[0].values, b.runs[0].values)

    def test_numpy_integer_source_dtypes(self, random_graph):
        for dtype in (np.int8, np.int32, np.uint16, np.int64):
            aggregate = run_average("bfs", random_graph, np.array([0, 3], dtype=dtype))
            assert aggregate.num_runs == 2
            assert {run.source for run in aggregate.runs} == {0, 3}
            assert all(isinstance(run.source, int) for run in aggregate.runs)

    def test_integral_float_sources_accepted(self, random_graph):
        aggregate = run_average("bfs", random_graph, np.array([0.0, 2.0]))
        assert {run.source for run in aggregate.runs} == {0, 2}

    def test_fractional_float_sources_rejected(self, random_graph):
        with pytest.raises(ConfigurationError):
            run_average("bfs", random_graph, np.array([0.5, 2.0]))

    def test_generator_sources_accepted(self, random_graph):
        aggregate = run_average("bfs", random_graph, (s for s in (1, 2)))
        assert aggregate.num_runs == 2


class TestPackageLevelExports:
    def test_top_level_imports(self):
        import repro

        assert callable(repro.bfs)
        assert callable(repro.sssp)
        assert callable(repro.cc)
        assert callable(repro.load_dataset)
        assert repro.EMOGI_STRATEGY is AccessStrategy.MERGED_ALIGNED
        assert repro.__version__
