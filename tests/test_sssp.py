"""SSSP correctness tests against networkx/scipy references."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.traversal.bfs import bfs_levels
from repro.traversal.sssp import UNREACHABLE, run_sssp, sssp_distances
from repro.types import ALL_STRATEGIES, AccessStrategy

from .conftest import to_networkx


class TestReferenceSSSP:
    def test_unweighted_equals_bfs_levels(self, path_graph):
        distances = sssp_distances(path_graph, 0)
        levels = bfs_levels(path_graph, 0)
        assert np.array_equal(distances, levels.astype(float))

    def test_weighted_path(self):
        from repro.graph.builder import from_edge_array

        graph = from_edge_array(
            np.array([0, 1, 0]),
            np.array([1, 2, 2]),
            weights=np.array([1.0, 1.0, 5.0]),
            directed=True,
        )
        distances = sssp_distances(graph, 0)
        # Going through vertex 1 (cost 2) beats the direct edge (cost 5).
        assert distances.tolist() == [0.0, 1.0, 2.0]

    def test_unreachable_is_inf(self, disconnected_graph):
        distances = sssp_distances(disconnected_graph, 0)
        assert distances[3] == UNREACHABLE
        assert np.isinf(distances[5])

    def test_matches_networkx_dijkstra(self, random_graph):
        nx = pytest.importorskip("networkx")
        reference = nx.single_source_dijkstra_path_length(
            to_networkx(random_graph, weighted=True), 0
        )
        distances = sssp_distances(random_graph, 0)
        for vertex in range(random_graph.num_vertices):
            if vertex in reference:
                assert distances[vertex] == pytest.approx(reference[vertex])
            else:
                assert np.isinf(distances[vertex])

    def test_invalid_source(self, random_graph):
        with pytest.raises(SimulationError):
            sssp_distances(random_graph, random_graph.num_vertices)


class TestSimulatedSSSP:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_all_strategies_compute_identical_distances(self, random_graph, strategy):
        reference = sssp_distances(random_graph, 5)
        result = run_sssp(random_graph, 5, strategy=strategy)
        assert np.allclose(result.values, reference, equal_nan=True)

    def test_weights_travel_over_the_link(self, random_graph):
        """SSSP must move more bytes than BFS: it also reads the weight list."""
        from repro.traversal.bfs import run_bfs

        bfs_result = run_bfs(random_graph, 5, strategy=AccessStrategy.MERGED_ALIGNED)
        sssp_result = run_sssp(random_graph, 5, strategy=AccessStrategy.MERGED_ALIGNED)
        assert (
            sssp_result.metrics.traffic.zero_copy_bytes
            > bfs_result.metrics.traffic.zero_copy_bytes
        )
        # And the dataset it is charged against includes the weight list (§5.2).
        assert sssp_result.metrics.dataset_bytes > bfs_result.metrics.dataset_bytes

    def test_unweighted_graph_uses_unit_weights(self, path_graph):
        result = run_sssp(path_graph, 0, strategy=AccessStrategy.MERGED_ALIGNED)
        assert result.values.tolist() == [0, 1, 2, 3, 4, 5]

    def test_metrics_present(self, random_graph):
        result = run_sssp(random_graph, 0, strategy=AccessStrategy.UVM)
        assert result.metrics.seconds > 0
        assert result.metrics.traffic.uvm_migrated_bytes > 0
