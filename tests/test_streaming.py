"""Tests for batched streaming traversals (CC / PageRank across platform lanes).

The streaming batch shares ONE algorithm pass across any number of
(strategy, system) lanes; each lane's values AND simulated metrics must be
identical to its solo run — the streaming analog of the multisource module's
bit-identity guarantee.
"""

import numpy as np
import pytest

from repro.config import ServiceConfig, ampere_pcie4, default_system
from repro.errors import ConfigurationError
from repro.service import GraphRegistry, Service, TraversalRequest
from repro.traversal.api import run_average, run_streaming
from repro.traversal.arena import EngineArena
from repro.traversal.cc import run_cc
from repro.traversal.pagerank import run_pagerank
from repro.traversal.streaming import (
    StreamingLane,
    normalize_lanes,
    run_streaming_batch,
)
from repro.types import AccessStrategy, Application

ALL_STRATEGIES = tuple(AccessStrategy)


class TestCCStreamingEquivalence:
    def test_values_and_metrics_identical_to_solo(self, random_graph):
        lanes = [
            StreamingLane(strategy, system)
            for system in (None, ampere_pcie4())
            for strategy in ALL_STRATEGIES
        ]
        batch = run_streaming_batch("cc", random_graph, lanes)
        assert batch.num_lanes == len(lanes)
        assert batch.words == 1
        for lane, result in zip(lanes, batch.results):
            solo = run_cc(random_graph, strategy=lane.strategy, system=lane.system)
            assert np.array_equal(result.values, solo.values)
            assert result.metrics.seconds == solo.metrics.seconds
            assert result.metrics.iterations == solo.metrics.iterations
            assert (
                result.metrics.traffic.useful_bytes
                == solo.metrics.traffic.useful_bytes
            )

    def test_application_enum_accepted(self, disconnected_graph):
        batch = run_streaming_batch(
            Application.CC, disconnected_graph, [AccessStrategy.UVM]
        )
        solo = run_cc(disconnected_graph, strategy=AccessStrategy.UVM)
        assert np.array_equal(batch.results[0].values, solo.values)

    def test_lane_values_are_independent_copies(self, disconnected_graph):
        batch = run_streaming_batch(
            "cc", disconnected_graph, [AccessStrategy.UVM, AccessStrategy.MERGED]
        )
        batch.results[0].values[0] = -1
        assert batch.results[1].values[0] != -1


class TestPageRankStreamingEquivalence:
    def test_scores_and_metrics_identical_to_solo(self, random_graph):
        lanes = [(s, None) for s in ALL_STRATEGIES]
        batch = run_streaming_batch("pagerank", random_graph, lanes)
        for lane, result in zip(normalize_lanes(lanes), batch.results):
            solo = run_pagerank(random_graph, strategy=lane.strategy)
            assert np.array_equal(result.values, solo.values)
            assert result.iterations == solo.iterations
            assert result.converged == solo.converged
            assert result.metrics.seconds == solo.metrics.seconds

    def test_pagerank_kwargs_forwarded(self, random_graph):
        batch = run_streaming_batch(
            "pagerank", random_graph, [AccessStrategy.UVM], max_iterations=2
        )
        assert batch.results[0].iterations <= 2

    def test_per_lane_params_stay_bit_identical(self, random_graph):
        # Lanes pinning their own damping/tolerance/max_iterations must land
        # in separate sweeps: each result equals its solo run with exactly
        # those parameters, never the batch defaults.
        lanes = [
            StreamingLane(AccessStrategy.MERGED_ALIGNED),
            StreamingLane(AccessStrategy.MERGED_ALIGNED, damping=0.6),
            StreamingLane(AccessStrategy.UVM, tolerance=1e-3),
            StreamingLane(AccessStrategy.NAIVE, max_iterations=3),
        ]
        batch = run_streaming_batch("pagerank", random_graph, lanes)
        expected_params = [
            dict(),
            dict(damping=0.6),
            dict(tolerance=1e-3),
            dict(max_iterations=3),
        ]
        for lane, params, result in zip(lanes, expected_params, batch.results):
            solo = run_pagerank(random_graph, strategy=lane.strategy, **params)
            assert np.array_equal(result.values, solo.values)
            assert result.iterations == solo.iterations
            assert result.converged == solo.converged
        # Four distinct effective parameter triples: four sweeps.
        assert batch.words == 4

    def test_lanes_sharing_params_share_one_sweep(self, random_graph):
        lanes = [
            StreamingLane(AccessStrategy.MERGED_ALIGNED, damping=0.7),
            StreamingLane(AccessStrategy.UVM, damping=0.7),
        ]
        batch = run_streaming_batch("pagerank", random_graph, lanes)
        assert batch.words == 1
        for lane, result in zip(lanes, batch.results):
            solo = run_pagerank(random_graph, strategy=lane.strategy, damping=0.7)
            assert np.array_equal(result.values, solo.values)

    def test_explicit_lane_params_equal_to_defaults_share_the_default_sweep(
        self, random_graph
    ):
        lanes = [
            StreamingLane(AccessStrategy.MERGED_ALIGNED),
            StreamingLane(AccessStrategy.UVM, damping=0.85, tolerance=1e-6),
        ]
        batch = run_streaming_batch("pagerank", random_graph, lanes)
        assert batch.words == 1


class TestLaneNormalization:
    def test_accepts_mixed_forms(self):
        lanes = normalize_lanes(
            [
                "uvm",
                AccessStrategy.MERGED,
                (AccessStrategy.MERGED_ALIGNED, default_system()),
                StreamingLane(AccessStrategy.NAIVE),
            ]
        )
        assert [lane.strategy for lane in lanes] == [
            AccessStrategy.UVM,
            AccessStrategy.MERGED,
            AccessStrategy.MERGED_ALIGNED,
            AccessStrategy.NAIVE,
        ]

    def test_empty_lanes_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_lanes([])

    def test_garbage_lane_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_lanes([object()])

    def test_unknown_application_rejected(self, disconnected_graph):
        with pytest.raises(ConfigurationError):
            run_streaming_batch("bfs", disconnected_graph, ["uvm"])


class TestWordChunking:
    def test_more_than_64_lanes_split_into_words(self, disconnected_graph):
        lanes = [AccessStrategy.UVM] * 70
        batch = run_streaming_batch("cc", disconnected_graph, lanes)
        assert batch.num_lanes == 70
        assert batch.words == 2


class TestArenaIntegration:
    def test_engines_leased_and_returned(self, random_graph):
        arena = EngineArena(max_idle=8)
        run_streaming_batch(
            "cc", random_graph, [AccessStrategy.UVM, AccessStrategy.MERGED],
            arena=arena,
        )
        assert arena.created == 2
        assert arena.idle_count == 2
        # A second batch over the same lanes reuses the parked engines.
        batch = run_streaming_batch(
            "cc", random_graph, [AccessStrategy.UVM, AccessStrategy.MERGED],
            arena=arena,
        )
        assert arena.reused == 2
        solo = run_cc(random_graph, strategy=AccessStrategy.UVM)
        assert np.array_equal(batch.results[0].values, solo.values)
        assert batch.results[0].metrics.seconds == solo.metrics.seconds


class TestApiDispatch:
    def test_run_streaming_wrapper(self, random_graph):
        outcome = run_streaming("cc", random_graph, ["uvm", "merged"])
        assert outcome.num_lanes == 2

    def test_run_average_cc_batched_matches_serial(self, disconnected_graph):
        batched = run_average(Application.CC, disconnected_graph, [0], batched=True)
        serial = run_average(Application.CC, disconnected_graph, [0], batched=False)
        assert batched.num_runs == serial.num_runs == 1
        assert np.array_equal(batched.runs[0].values, serial.runs[0].values)
        assert (
            batched.runs[0].metrics.seconds == serial.runs[0].metrics.seconds
        )


class TestServiceStreamingFusion:
    def test_cc_groups_fused_across_strategies(self, random_graph):
        registry = GraphRegistry()
        registry.register_graph(random_graph)
        # One worker: the CC jobs across strategies pile up as separate batch
        # groups, and the first drain fuses them into one streaming run.
        config = ServiceConfig(max_workers=1)
        with Service(registry=registry, config=config) as service:
            jobs = [
                service.submit(
                    TraversalRequest("cc", random_graph.name, strategy=strategy)
                )
                for strategy in ALL_STRATEGIES
            ]
            results = [service.result(job, timeout=30) for job in jobs]
        for strategy, result in zip(ALL_STRATEGIES, results):
            solo = run_cc(random_graph, strategy=strategy)
            assert np.array_equal(result.values, solo.values)
            assert result.metrics.seconds == solo.metrics.seconds
        stats = service.stats()
        assert stats.completed == len(ALL_STRATEGIES)
        assert stats.executions == len(ALL_STRATEGIES)

    def test_fused_results_cached_per_configuration(self, random_graph):
        registry = GraphRegistry()
        registry.register_graph(random_graph)
        with Service(registry=registry, config=ServiceConfig(max_workers=1)) as service:
            first = [
                service.submit(
                    TraversalRequest("cc", random_graph.name, strategy=strategy)
                )
                for strategy in ("uvm", "merged")
            ]
            for job in first:
                service.result(job, timeout=30)
            again = service.submit(
                TraversalRequest("cc", random_graph.name, strategy="uvm")
            )
            service.result(again, timeout=30)
        stats = service.stats()
        assert stats.cache.hits >= 1
        assert stats.executions == 2
