"""Tests for repro.timing."""

import pytest

from repro.timing import GB, TimeBreakdown, ns, to_gbps, transfer_seconds, us


class TestUnits:
    def test_us(self):
        assert us(1.5) == pytest.approx(1.5e-6)

    def test_ns(self):
        assert ns(120) == pytest.approx(120e-9)

    def test_to_gbps(self):
        assert to_gbps(GB, 1.0) == pytest.approx(1.0)
        assert to_gbps(2 * GB, 0.5) == pytest.approx(4.0)

    def test_to_gbps_zero_interval(self):
        assert to_gbps(100, 0.0) == 0.0

    def test_transfer_seconds(self):
        assert transfer_seconds(12.3 * GB, 12.3) == pytest.approx(1.0)

    def test_transfer_seconds_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            transfer_seconds(-1, 10.0)
        with pytest.raises(ValueError):
            transfer_seconds(100, 0.0)


class TestTimeBreakdown:
    def test_total_overlaps_transfer_and_compute(self):
        breakdown = TimeBreakdown(
            interconnect_seconds=2.0, dram_seconds=0.5, compute_seconds=1.0
        )
        # Only the slowest overlapped component counts.
        assert breakdown.total() == pytest.approx(2.0)

    def test_total_adds_serial_components(self):
        breakdown = TimeBreakdown(
            interconnect_seconds=1.0,
            fault_handling_seconds=0.25,
            host_preprocess_seconds=0.25,
            kernel_launch_seconds=0.5,
        )
        assert breakdown.total() == pytest.approx(2.0)

    def test_extra_components_are_serial(self):
        breakdown = TimeBreakdown(extra={"subway_iteration": 1.5})
        assert breakdown.total() == pytest.approx(1.5)

    def test_add_accumulates_all_fields(self):
        first = TimeBreakdown(
            interconnect_seconds=1.0, compute_seconds=0.5, extra={"x": 0.1}
        )
        second = TimeBreakdown(
            interconnect_seconds=2.0,
            compute_seconds=0.25,
            fault_handling_seconds=0.5,
            extra={"x": 0.2, "y": 0.3},
        )
        first.add(second)
        assert first.interconnect_seconds == pytest.approx(3.0)
        assert first.compute_seconds == pytest.approx(0.75)
        assert first.fault_handling_seconds == pytest.approx(0.5)
        assert first.extra == pytest.approx({"x": 0.3, "y": 0.3})

    def test_empty_breakdown_is_zero(self):
        assert TimeBreakdown().total() == 0.0
