"""Connected-components correctness tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import from_edge_array
from repro.traversal.cc import cc_labels, run_cc
from repro.types import ALL_STRATEGIES, AccessStrategy

from .conftest import to_networkx


def labels_to_partition(labels):
    partition = {}
    for vertex, label in enumerate(labels.tolist()):
        partition.setdefault(label, set()).add(vertex)
    return sorted(frozenset(s) for s in partition.values())


class TestReferenceCC:
    def test_connected_graph_has_one_component(self, path_graph):
        labels = cc_labels(path_graph)
        assert len(set(labels.tolist())) == 1

    def test_disconnected_graph(self, disconnected_graph):
        labels = cc_labels(disconnected_graph)
        partition = labels_to_partition(labels)
        assert partition == sorted([frozenset({0, 1, 2}), frozenset({3, 4}), frozenset({5})])

    def test_labels_are_component_minima(self, disconnected_graph):
        labels = cc_labels(disconnected_graph)
        assert labels.tolist() == [0, 0, 0, 3, 3, 5]

    def test_matches_networkx(self, random_graph):
        nx = pytest.importorskip("networkx")
        from repro.graph.builder import symmetrize

        undirected = symmetrize(random_graph.without_weights())
        labels = cc_labels(undirected)
        reference = sorted(
            frozenset(component)
            for component in nx.connected_components(to_networkx(undirected))
        )
        assert labels_to_partition(labels) == reference


class TestSimulatedCC:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_all_strategies_compute_identical_labels(self, disconnected_graph, strategy):
        reference = cc_labels(disconnected_graph)
        result = run_cc(disconnected_graph, strategy=strategy)
        assert np.array_equal(result.values, reference)

    def test_first_iteration_streams_every_edge(self, paper_example_graph):
        """§5.4: CC sets all vertices active, so the whole edge list is read."""
        result = run_cc(paper_example_graph, strategy=AccessStrategy.MERGED_ALIGNED)
        assert result.metrics.traffic.edges_processed >= paper_example_graph.num_edges

    def test_source_is_none(self, paper_example_graph):
        result = run_cc(paper_example_graph, strategy=AccessStrategy.UVM)
        assert result.source is None
        assert result.metrics.iterations >= 1


@given(
    edges=st.lists(
        st.tuples(st.integers(0, 25), st.integers(0, 25)), min_size=1, max_size=100
    )
)
@settings(max_examples=50, deadline=None)
def test_cc_partition_matches_union_find(edges):
    """Property: label propagation finds exactly the union-find components."""
    sources = np.array([e[0] for e in edges])
    destinations = np.array([e[1] for e in edges])
    graph = from_edge_array(sources, destinations, directed=False)
    labels = cc_labels(graph)

    parent = list(range(graph.num_vertices))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a, b):
        parent[find(a)] = find(b)

    for u, v in edges:
        union(u, v)
    expected = {}
    for vertex in range(graph.num_vertices):
        expected.setdefault(find(vertex), set()).add(vertex)
    assert labels_to_partition(labels) == sorted(frozenset(s) for s in expected.values())
