#!/usr/bin/env python3
"""Interconnect scaling study: PCIe 3.0 vs PCIe 4.0 (the Figure 12 scenario).

EMOGI's claim is that once zero-copy requests are merged and aligned, the
traversal is limited only by interconnect bandwidth — so a faster link
translates almost linearly into performance, whereas UVM is held back by its
CPU-side page-fault handling.  This example reproduces that study on the
DGX-A100-like platform for BFS and SSSP.

Run with::

    python examples/pcie_scaling_study.py
"""

from __future__ import annotations

from repro import AccessStrategy, Application, ampere_pcie3, ampere_pcie4, load_dataset, run_average
from repro.bench.report import format_table
from repro.graph.datasets import pick_sources

GRAPHS = ("GK", "FS", "ML")
APPLICATIONS = (Application.BFS, Application.SSSP)


def main() -> None:
    pcie3 = ampere_pcie3()
    pcie4 = ampere_pcie4()
    print(f"platform A: {pcie3.name}  (peak {pcie3.pcie.block_transfer_gbps:.1f} GB/s)")
    print(f"platform B: {pcie4.name}  (peak {pcie4.pcie.block_transfer_gbps:.1f} GB/s)\n")

    rows = []
    uvm_scalings = []
    emogi_scalings = []
    for application in APPLICATIONS:
        for symbol in GRAPHS:
            graph = load_dataset(symbol)
            sources = pick_sources(graph, count=2, seed=3)
            times = {}
            for label, system in (("pcie3", pcie3), ("pcie4", pcie4)):
                for strategy in (AccessStrategy.UVM, AccessStrategy.MERGED_ALIGNED):
                    aggregate = run_average(
                        application, graph, sources, strategy=strategy, system=system
                    )
                    times[(label, strategy)] = aggregate.mean_seconds
            uvm_scale = times[("pcie3", AccessStrategy.UVM)] / times[("pcie4", AccessStrategy.UVM)]
            emogi_scale = (
                times[("pcie3", AccessStrategy.MERGED_ALIGNED)]
                / times[("pcie4", AccessStrategy.MERGED_ALIGNED)]
            )
            uvm_scalings.append(uvm_scale)
            emogi_scalings.append(emogi_scale)
            rows.append(
                [
                    application.value,
                    symbol,
                    round(times[("pcie3", AccessStrategy.UVM)] * 1e3, 3),
                    round(times[("pcie4", AccessStrategy.UVM)] * 1e3, 3),
                    round(uvm_scale, 2),
                    round(times[("pcie3", AccessStrategy.MERGED_ALIGNED)] * 1e3, 3),
                    round(times[("pcie4", AccessStrategy.MERGED_ALIGNED)] * 1e3, 3),
                    round(emogi_scale, 2),
                ]
            )
    print(
        format_table(
            [
                "app",
                "graph",
                "uvm_pcie3_ms",
                "uvm_pcie4_ms",
                "uvm_scaling",
                "emogi_pcie3_ms",
                "emogi_pcie4_ms",
                "emogi_scaling",
            ],
            rows,
            title="PCIe 3.0 -> 4.0 scaling",
        )
    )
    print()
    print(
        f"average scaling with the 2x faster link: UVM "
        f"{sum(uvm_scalings) / len(uvm_scalings):.2f}x, EMOGI "
        f"{sum(emogi_scalings) / len(emogi_scalings):.2f}x "
        "(the paper reports 1.53x and ~1.9x)"
    )


if __name__ == "__main__":
    main()
