#!/usr/bin/env python3
"""Biomedical hypothesis-generation scenario: SSSP on a MOLIERE analog.

MOLIERE_2016 is a 6.7-billion-edge biomedical knowledge graph used for
hypothesis generation; shortest weighted paths between concepts are its core
query.  The graph's defining property for EMOGI is its very high average
degree (~222 edges per vertex), which makes almost every zero-copy request a
full 128-byte cache line once accesses are merged and aligned.

This example runs weighted SSSP on the ML analog under all four strategies,
shows the per-component time breakdown, and verifies that every strategy
returns identical distances.

Run with::

    python examples/biomedical_sssp.py
"""

from __future__ import annotations

import numpy as np

from repro import AccessStrategy, load_dataset, sssp
from repro.bench.report import format_table
from repro.graph.datasets import pick_sources

STRATEGIES = (
    AccessStrategy.UVM,
    AccessStrategy.NAIVE,
    AccessStrategy.MERGED,
    AccessStrategy.MERGED_ALIGNED,
)


def main() -> None:
    graph = load_dataset("ML")
    source = int(pick_sources(graph, count=1, seed=23)[0])
    print(
        f"MOLIERE analog: |V|={graph.num_vertices:,} |E|={graph.num_edges:,}, "
        f"average degree {graph.average_degree():.1f}, weighted"
    )
    print(f"computing shortest paths from concept vertex {source}\n")

    rows = []
    results = {}
    for strategy in STRATEGIES:
        result = sssp(graph, source, strategy=strategy)
        results[strategy] = result
        breakdown = result.metrics.breakdown
        rows.append(
            [
                strategy.value,
                round(result.seconds * 1e3, 3),
                round(breakdown.interconnect_seconds * 1e3, 3),
                round(breakdown.fault_handling_seconds * 1e3, 3),
                round(breakdown.compute_seconds * 1e3, 3),
                round(result.metrics.request_size_distribution[128] * 100, 1),
            ]
        )
    print(
        format_table(
            ["strategy", "time_ms", "pcie_ms", "fault_ms", "compute_ms", "128B_req_pct"],
            rows,
            title="Weighted SSSP on the MOLIERE analog",
        )
    )

    uvm = results[AccessStrategy.UVM]
    emogi = results[AccessStrategy.MERGED_ALIGNED]
    assert np.allclose(uvm.values, emogi.values, equal_nan=True)
    reachable = np.isfinite(emogi.values)
    print()
    print(f"EMOGI speedup over UVM: {uvm.seconds / emogi.seconds:.2f}x")
    print(
        f"reachable concepts: {int(reachable.sum()):,}, "
        f"mean shortest distance {float(emogi.values[reachable].mean()):.1f}"
    )


if __name__ == "__main__":
    main()
