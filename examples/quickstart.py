#!/usr/bin/env python3
"""Quickstart: traverse an out-of-memory graph with EMOGI vs UVM.

This is the smallest end-to-end use of the library: build (or load) a CSR
graph whose edge list does not fit in the simulated GPU memory, run BFS under
the UVM baseline and under EMOGI (merged + aligned zero-copy access), and
compare execution time, achieved PCIe bandwidth and I/O read amplification.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import AccessStrategy, bfs, load_dataset
from repro.bench.report import format_table
from repro.graph.datasets import pick_sources


def main() -> None:
    # GK is the scaled analog of GAP-kron: ~2.1M edge entries, roughly twice
    # the size of the simulated 16GB-class GPU memory (scaled by the same
    # factor), so the edge list must stay in host memory.
    graph = load_dataset("GK")
    source = int(pick_sources(graph, count=1, seed=7)[0])
    print(f"graph {graph.name}: |V|={graph.num_vertices:,} |E|={graph.num_edges:,} "
          f"edge list {graph.edge_list_bytes / 1e6:.1f} MB (scaled)")
    print(f"BFS source vertex: {source}")
    print()

    rows = []
    results = {}
    for strategy in (
        AccessStrategy.UVM,
        AccessStrategy.NAIVE,
        AccessStrategy.MERGED,
        AccessStrategy.MERGED_ALIGNED,
    ):
        result = bfs(graph, source, strategy=strategy)
        results[strategy] = result
        metrics = result.metrics
        rows.append(
            [
                strategy.value,
                round(metrics.seconds * 1e3, 3),
                round(metrics.achieved_bandwidth_gbps, 2),
                round(metrics.io_amplification, 2),
                metrics.total_pcie_requests,
                metrics.iterations,
            ]
        )
    print(
        format_table(
            ["strategy", "time_ms", "pcie_gbps", "io_amplification", "requests", "iterations"],
            rows,
            title="BFS on GK under the four edge-list access strategies",
        )
    )

    uvm = results[AccessStrategy.UVM]
    emogi = results[AccessStrategy.MERGED_ALIGNED]
    assert (uvm.values == emogi.values).all(), "all strategies compute identical BFS levels"
    print()
    print(f"EMOGI speedup over UVM: {uvm.seconds / emogi.seconds:.2f}x")
    reached = int((emogi.values >= 0).sum())
    print(f"vertices reached: {reached:,} of {graph.num_vertices:,}")


if __name__ == "__main__":
    main()
