#!/usr/bin/env python3
"""Social-network analysis scenario: multi-source BFS on a Friendster analog.

The paper's introduction motivates EMOGI with social-network analytics where
the graph (Friendster: 3.6B edges) is far larger than GPU memory.  This
example mirrors that workload: run BFS from several random users, measure how
the zero-copy optimizations change the PCIe request-size mix, and report the
averaged speedup over UVM — i.e. a miniature version of Figures 5, 7 and 9
restricted to the FS graph.

Run with::

    python examples/social_network_bfs.py
"""

from __future__ import annotations

from repro import AccessStrategy, Application, load_dataset, run_average
from repro.bench.report import format_table
from repro.graph.datasets import pick_sources

STRATEGIES = (
    AccessStrategy.UVM,
    AccessStrategy.NAIVE,
    AccessStrategy.MERGED,
    AccessStrategy.MERGED_ALIGNED,
)


def main() -> None:
    graph = load_dataset("FS")
    sources = pick_sources(graph, count=4, seed=11)
    print(
        f"Friendster analog: |V|={graph.num_vertices:,} |E|={graph.num_edges:,}, "
        f"average degree {graph.average_degree():.1f}"
    )
    print(f"running BFS from {len(sources)} random users\n")

    aggregates = {
        strategy: run_average(Application.BFS, graph, sources, strategy=strategy)
        for strategy in STRATEGIES
    }
    uvm = aggregates[AccessStrategy.UVM]

    rows = []
    for strategy, aggregate in aggregates.items():
        distribution = aggregate.mean_request_size_distribution()
        rows.append(
            [
                strategy.value,
                round(aggregate.mean_seconds * 1e3, 3),
                round(aggregate.speedup_over(uvm), 2),
                round(aggregate.mean_bandwidth_gbps, 2),
                f"{distribution[32] * 100:.1f}%",
                f"{distribution[128] * 100:.1f}%",
            ]
        )
    print(
        format_table(
            ["strategy", "mean_time_ms", "speedup_vs_uvm", "pcie_gbps", "32B_requests", "128B_requests"],
            rows,
            title="Multi-source BFS on the Friendster analog",
        )
    )

    emogi = aggregates[AccessStrategy.MERGED_ALIGNED]
    print()
    print(
        "Zero-copy without coalescing is "
        f"{aggregates[AccessStrategy.NAIVE].speedup_over(uvm):.2f}x of UVM, "
        f"but merging + aligning the warp accesses reaches {emogi.speedup_over(uvm):.2f}x."
    )


if __name__ == "__main__":
    main()
