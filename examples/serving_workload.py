#!/usr/bin/env python3
"""Serving demo: run a mixed traversal workload through ``repro.service``.

Registers two of the paper's dataset analogs plus a synthetic RMAT graph,
fires a burst of mixed BFS/SSSP/CC requests at the service from several client
threads (with plenty of duplicates, as real traffic has), and prints the
throughput/latency report together with the dedup / cache / registry counters
that show where the serving layer saved work.

Run with::

    python examples/serving_workload.py
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro import ServiceConfig, TraversalRequest
from repro.service import Service, run_workload
from repro.types import AccessStrategy, Application


def build_requests() -> list[TraversalRequest]:
    requests: list[TraversalRequest] = []
    for graph in ("GK", "GU"):
        for source in range(4):
            requests.append(TraversalRequest(Application.BFS, graph, source=source))
            requests.append(
                TraversalRequest(
                    Application.SSSP, graph, source=source, strategy=AccessStrategy.MERGED
                )
            )
        requests.append(TraversalRequest(Application.CC, graph))
    # Real traffic repeats itself: duplicate a third of the workload so the
    # dedup window and the result cache both get exercised.
    requests.extend(requests[:: 3])
    return requests


def main() -> None:
    config = ServiceConfig(max_workers=4, registry_budget_bytes=64 * 1024**2)
    service = Service.with_datasets(["GK", "GU"], config=config, scale=40000)
    requests = build_requests()
    print(f"submitting {len(requests)} requests over {len(service.registry)} graphs...")

    # Phase 1: a concurrent burst from 8 client threads.
    with ThreadPoolExecutor(max_workers=8) as clients:
        jobs = list(clients.map(service.submit, requests))
    service.wait_all(timeout=120)
    burst = service.stats()
    print(
        f"burst done: {burst.completed} completed, "
        f"{burst.deduplicated} deduplicated, "
        f"{burst.executions} engine executions"
    )
    sample = service.result(jobs[0])
    print(
        f"sample answer: {sample.application.value} on {sample.graph_name} "
        f"in {sample.seconds * 1e3:.3f} simulated ms\n"
    )

    # Phase 2: replay the same workload — everything is now a cache hit.
    report = run_workload(service, requests, timeout=120)
    print(report.to_table())
    replay = report.stats
    print(
        f"\nreplay executed {replay.executions - burst.executions} new traversals "
        f"(cache hit rate {replay.cache.hit_rate:.0%})"
    )
    service.close()


if __name__ == "__main__":
    main()
