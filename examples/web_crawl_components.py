#!/usr/bin/env python3
"""Web-graph scenario: connected components and the effect of GPU memory size.

Web crawls such as sk-2005 and uk-2007-05 are the paper's directed datasets.
Connected components is the application where UVM looks comparatively best
(the whole edge list is streamed, so page migrations have decent locality) —
and where the size of the GPU memory relative to the graph decides how much
UVM thrashes.  This example:

1. runs CC on the undirected evaluation graphs under UVM and EMOGI, and
2. sweeps the simulated GPU memory capacity on one graph to show the UVM
   crossover the paper attributes to sk-2005 "almost fitting" in memory.

Run with::

    python examples/web_crawl_components.py
"""

from __future__ import annotations

import numpy as np

from repro import AccessStrategy, cc, default_system, load_dataset
from repro.bench.report import format_table
from repro.graph.datasets import UNDIRECTED_SYMBOLS


def components_summary(labels: np.ndarray) -> tuple[int, int]:
    """Number of components and size of the largest one."""
    unique, counts = np.unique(labels, return_counts=True)
    return int(unique.size), int(counts.max())


def main() -> None:
    print("Connected components: UVM vs EMOGI (undirected evaluation graphs)\n")
    rows = []
    for symbol in UNDIRECTED_SYMBOLS:
        graph = load_dataset(symbol)
        uvm = cc(graph, strategy=AccessStrategy.UVM)
        emogi = cc(graph, strategy=AccessStrategy.MERGED_ALIGNED)
        assert (uvm.values == emogi.values).all()
        num_components, largest = components_summary(emogi.values)
        rows.append(
            [
                symbol,
                round(uvm.seconds * 1e3, 3),
                round(emogi.seconds * 1e3, 3),
                round(uvm.seconds / emogi.seconds, 2),
                num_components,
                largest,
            ]
        )
    print(
        format_table(
            ["graph", "uvm_ms", "emogi_ms", "speedup", "components", "largest"],
            rows,
            title="CC results",
        )
    )

    print("\nGPU memory sweep (BFS-free CC on GK): when the graph fits, UVM catches up\n")
    graph = load_dataset("GK")
    base = default_system()
    sweep_rows = []
    for fraction in (0.25, 0.5, 1.0, 2.0):
        capacity = int(graph.edge_list_bytes * fraction) + 2 * 1024 * 1024
        system = base.with_gpu_memory(capacity)
        uvm = cc(graph, strategy=AccessStrategy.UVM, system=system)
        emogi = cc(graph, strategy=AccessStrategy.MERGED_ALIGNED, system=system)
        sweep_rows.append(
            [
                f"{fraction:.2f}x edge list",
                round(uvm.metrics.io_amplification, 2),
                round(uvm.seconds * 1e3, 3),
                round(emogi.seconds * 1e3, 3),
                round(uvm.seconds / emogi.seconds, 2),
            ]
        )
    print(
        format_table(
            ["gpu_memory", "uvm_io_amplification", "uvm_ms", "emogi_ms", "emogi_speedup"],
            sweep_rows,
            title="Sensitivity of UVM to device memory capacity",
        )
    )


if __name__ == "__main__":
    main()
